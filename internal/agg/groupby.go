package agg

import (
	"fmt"
	"sort"

	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// Spec describes one aggregate column: fn(arg) AS name.
type Spec struct {
	Fn   *Func
	Arg  expr.Expr // nil for count(*)
	Name string
}

// GroupBy is the windowed grouped aggregation operator implementing the
// general form of slide 34:
//
//	select G, F1 from S where P group by G having F2 op theta
//
// Results for a window instance are emitted when the operator's notion
// of time passes the window's end — time advances with tuple timestamps
// and with progress punctuations (slide 28's "similar utility in query
// processing"). For unbounded (no-window) queries results appear only at
// Flush, the blocking behaviour that motivates windows in the first
// place.
type GroupBy struct {
	name      string
	groupBy   []expr.Expr
	groupName []string
	aggs      []Spec
	having    expr.Expr // evaluated over the output schema; may be nil
	spec      window.Spec
	assigner  *window.Assigner
	out       *tuple.Schema
	// windows maps window start -> group table.
	windows   map[int64]*groupTable
	unbounded *groupTable
	watermark int64
	emitted   int64
	maxGroups int // high-water mark of concurrent group states
}

type groupTable struct {
	end int64
	// groups chains on the key hash; chains resolve hash collisions by
	// comparing key values.
	groups map[uint64][]*group
	n      int
}

type group struct {
	keys   []tuple.Value
	states []State
}

// NewGroupBy builds a grouped aggregate. groupBy expressions become the
// leading output fields with the given names; each agg spec appends one
// field. A zero window.Spec (KindNone) aggregates the whole stream.
func NewGroupBy(name string, in *tuple.Schema, groupBy []expr.Expr, groupNames []string, aggs []Spec, spec window.Spec, having func(out *tuple.Schema) (expr.Expr, error)) (*GroupBy, error) {
	if len(groupBy) != len(groupNames) {
		return nil, fmt.Errorf("agg: %d group exprs, %d names", len(groupBy), len(groupNames))
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fields := make([]tuple.Field, 0, len(groupBy)+len(aggs)+1)
	fields = append(fields, tuple.Field{Name: "wend", Kind: tuple.KindTime, Ordering: true})
	for i, g := range groupBy {
		fields = append(fields, tuple.Field{Name: groupNames[i], Kind: g.Kind()})
	}
	for _, a := range aggs {
		if a.Fn.NeedsArg && a.Arg == nil {
			return nil, fmt.Errorf("agg: %s requires an argument", a.Fn.Name)
		}
		argKind := tuple.KindInt
		if a.Arg != nil {
			argKind = a.Arg.Kind()
		}
		fields = append(fields, tuple.Field{Name: a.Name, Kind: a.Fn.Result(argKind)})
	}
	out := tuple.NewSchema(name, fields...)
	g := &GroupBy{
		name: name, groupBy: groupBy, groupName: groupNames, aggs: aggs,
		spec: spec, out: out, windows: make(map[int64]*groupTable),
	}
	if spec.Kind == window.KindTime {
		g.assigner = window.NewAssigner(spec)
	} else {
		g.unbounded = &groupTable{groups: make(map[uint64][]*group)}
	}
	if having != nil {
		h, err := having(out)
		if err != nil {
			return nil, err
		}
		if h != nil && h.Kind() != tuple.KindBool {
			return nil, fmt.Errorf("agg: HAVING must be boolean")
		}
		g.having = h
	}
	return g, nil
}

// Name implements ops.Operator.
func (g *GroupBy) Name() string { return g.name }

// OutSchema implements ops.Operator.
func (g *GroupBy) OutSchema() *tuple.Schema { return g.out }

// NumInputs implements ops.Operator.
func (g *GroupBy) NumInputs() int { return 1 }

// Push implements ops.Operator.
func (g *GroupBy) Push(_ int, e stream.Element, emit ops.Emit) {
	if e.IsPunct() {
		g.advance(e.Punct.Ts, emit)
		g.closeGroups(e.Punct, emit)
		return
	}
	t := e.Tuple
	if t.Ts > g.watermark {
		g.advance(t.Ts, emit)
	}
	if g.assigner == nil {
		g.fold(g.unbounded, t)
		return
	}
	for _, id := range g.assigner.Assign(t.Ts) {
		tbl, ok := g.windows[id.Start]
		if !ok {
			tbl = &groupTable{end: id.End, groups: make(map[uint64][]*group)}
			g.windows[id.Start] = tbl
		}
		g.fold(tbl, t)
	}
	if n := g.liveGroups(); n > g.maxGroups {
		g.maxGroups = n
	}
}

func (g *GroupBy) fold(tbl *groupTable, t *tuple.Tuple) {
	keys := make([]tuple.Value, len(g.groupBy))
	h := uint64(1469598103934665603)
	for i, ge := range g.groupBy {
		keys[i] = ge.Eval(t)
		vh := keys[i].Hash()
		h ^= vh
		h *= 1099511628211
	}
	var grp *group
	for _, cand := range tbl.groups[h] {
		if keysEqual(cand.keys, keys) {
			grp = cand
			break
		}
	}
	if grp == nil {
		states := make([]State, len(g.aggs))
		for i, a := range g.aggs {
			states[i] = a.Fn.New()
		}
		grp = &group{keys: keys, states: states}
		tbl.groups[h] = append(tbl.groups[h], grp)
		tbl.n++
	}
	for i, a := range g.aggs {
		if a.Arg == nil {
			grp.states[i].Add(tuple.Int(1))
		} else {
			grp.states[i].Add(a.Arg.Eval(t))
		}
	}
}

// advance moves the watermark and emits every window whose end has
// passed.
func (g *GroupBy) advance(now int64, emit ops.Emit) {
	if now <= g.watermark {
		return
	}
	g.watermark = now
	if g.assigner == nil {
		return
	}
	if g.spec.Landmark {
		// Agglomerative windows emit a snapshot at every slide boundary
		// but keep accumulating (slide 27).
		tbl, ok := g.windows[0]
		if !ok {
			return
		}
		for tbl.end <= now {
			g.emitTable(tbl, emit)
			tbl.end += g.spec.Slide
		}
		return
	}
	var due []int64
	for start, tbl := range g.windows {
		if tbl.end <= now {
			due = append(due, start)
		}
	}
	// Deterministic output order across runs.
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, start := range due {
		g.emitTable(g.windows[start], emit)
		delete(g.windows, start)
	}
}

func (g *GroupBy) emitTable(tbl *groupTable, emit ops.Emit) {
	// Deterministic group order: sort by key values.
	grps := make([]*group, 0, tbl.n)
	for _, chain := range tbl.groups {
		grps = append(grps, chain...)
	}
	sort.Slice(grps, func(i, j int) bool {
		a, b := grps[i], grps[j]
		for k := range a.keys {
			if c := a.keys[k].Compare(b.keys[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	for _, grp := range grps {
		vals := make([]tuple.Value, 0, 1+len(grp.keys)+len(grp.states))
		vals = append(vals, tuple.Time(tbl.end))
		vals = append(vals, grp.keys...)
		for _, st := range grp.states {
			vals = append(vals, st.Result())
		}
		out := tuple.New(tbl.end, vals...)
		if g.having != nil && !expr.EvalBool(g.having, out) {
			continue
		}
		g.emitted++
		emit(stream.Tup(out))
	}
}

// closeGroups applies data-dependent punctuations [TMSF03] (slide 28's
// auction-close idiom): when a punctuation's constant patterns are all
// on plain grouping columns, every group matching them is complete —
// emit it immediately and release its state, without waiting for a
// window boundary. Only exact-column group expressions participate;
// computed groupings are conservatively left open.
func (g *GroupBy) closeGroups(p *stream.Punctuation, emit ops.Emit) {
	if len(p.Fields) == 0 || len(g.groupBy) == 0 {
		return
	}
	// Map each punctuation pattern to a group-by position; bail out if
	// any pattern is on a column the grouping does not preserve.
	type bound struct {
		groupIdx int
		pat      stream.Pattern
	}
	var bounds []bound
	for col, pat := range p.Fields {
		matched := false
		for gi, ge := range g.groupBy {
			if c, ok := ge.(*expr.Col); ok && c.Index == col {
				bounds = append(bounds, bound{groupIdx: gi, pat: pat})
				matched = true
				break
			}
		}
		if !matched {
			return
		}
	}
	closeIn := func(tbl *groupTable, end int64) {
		var done []*group
		for h, chain := range tbl.groups {
			keep := chain[:0]
			for _, grp := range chain {
				match := true
				for _, b := range bounds {
					if !b.pat.Matches(grp.keys[b.groupIdx]) {
						match = false
						break
					}
				}
				if match {
					done = append(done, grp)
					tbl.n--
				} else {
					keep = append(keep, grp)
				}
			}
			if len(keep) == 0 {
				delete(tbl.groups, h)
			} else {
				tbl.groups[h] = keep
			}
		}
		sort.Slice(done, func(i, j int) bool {
			for k := range done[i].keys {
				if c := done[i].keys[k].Compare(done[j].keys[k]); c != 0 {
					return c < 0
				}
			}
			return false
		})
		for _, grp := range done {
			vals := make([]tuple.Value, 0, 1+len(grp.keys)+len(grp.states))
			vals = append(vals, tuple.Time(end))
			vals = append(vals, grp.keys...)
			for _, st := range grp.states {
				vals = append(vals, st.Result())
			}
			out := tuple.New(end, vals...)
			if g.having != nil && !expr.EvalBool(g.having, out) {
				continue
			}
			g.emitted++
			emit(stream.Tup(out))
		}
	}
	if g.unbounded != nil {
		closeIn(g.unbounded, p.Ts)
	}
	for _, tbl := range g.windows {
		closeIn(tbl, p.Ts)
	}
}

// Flush implements ops.Operator: emits all open windows (or the
// unbounded table).
func (g *GroupBy) Flush(emit ops.Emit) {
	if g.assigner == nil {
		if g.unbounded != nil && g.unbounded.n > 0 {
			g.unbounded.end = g.watermark
			g.emitTable(g.unbounded, emit)
			g.unbounded = &groupTable{groups: make(map[uint64][]*group)}
		}
		return
	}
	var due []int64
	for start := range g.windows {
		due = append(due, start)
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, start := range due {
		g.emitTable(g.windows[start], emit)
		delete(g.windows, start)
	}
}

// MemSize implements ops.Operator.
func (g *GroupBy) MemSize() int {
	n := 128
	count := func(tbl *groupTable) {
		for _, chain := range tbl.groups {
			grp := chain[0]
			n += 32 * len(chain)
			for _, k := range grp.keys {
				n += k.MemSize()
			}
			for _, st := range grp.states {
				n += st.MemSize()
			}
		}
	}
	for _, tbl := range g.windows {
		count(tbl)
	}
	if g.unbounded != nil {
		count(g.unbounded)
	}
	return n
}

// liveGroups counts group states across all open windows: the
// bounded-memory quantity [ABB+02] analyzes (slides 35-36).
func (g *GroupBy) liveGroups() int {
	n := 0
	for _, tbl := range g.windows {
		n += tbl.n
	}
	if g.unbounded != nil {
		n += g.unbounded.n
	}
	return n
}

// MaxGroups reports the high-water mark of concurrent group states.
func (g *GroupBy) MaxGroups() int { return g.maxGroups }

// Emitted reports the number of result rows produced.
func (g *GroupBy) Emitted() int64 { return g.emitted }

// Selectivity implements ops.Costs: aggregation is data-reducing; the
// precise ratio is workload-dependent, so report observed behaviour.
func (g *GroupBy) Selectivity() float64 { return 0.1 }

// UnitCost implements ops.Costs.
func (g *GroupBy) UnitCost() float64 {
	return float64(len(g.groupBy) + len(g.aggs))
}

func keysEqual(a, b []tuple.Value) bool {
	for i := range a {
		av, bv := a[i], b[i]
		if av.IsNull() && bv.IsNull() {
			continue
		}
		if !av.Equal(bv) {
			return false
		}
	}
	return true
}
