package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"streamdb/internal/adaptive"
	"streamdb/internal/expr"
	"streamdb/internal/optimizer/rate"
	"streamdb/internal/sched"
	"streamdb/internal/shed"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// E3RateBasedPlans reproduces the slide-41 worked example: the same two
// operators in the two possible orders, predicted by the rate model and
// verified by a discrete simulation. The fast-first plan outputs 10x.
func E3RateBasedPlans(scale Scale) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "rate-based optimization worked example (slide 41)",
		Header: []string{"plan", "predicted(t/s)", "simulated(t/s)", "classicCost"},
	}
	ops := []rate.Op{
		{Name: "slow(sel .1, cap 50/s)", Sel: 0.1, Capacity: 50},
		{Name: "fast(sel .1)", Sel: 0.1, Capacity: math.Inf(1)},
	}
	plans, err := rate.Enumerate(500, ops)
	if err != nil {
		panic(err)
	}
	// Discrete verification: arrivals at 500/s for simSecs seconds;
	// each operator admits at most capacity tuples per second.
	simSecs := scale.N(2000)
	simulate := func(order []int) float64 {
		emitted := 0.0
		rng := rand.New(rand.NewSource(3))
		carry := make([]float64, len(order)) // queued tuples before each op
		for s := 0; s < simSecs; s++ {
			carry[0] += 500
			for oi, idx := range order {
				op := ops[idx]
				admit := carry[oi]
				if !math.IsInf(op.Capacity, 1) && admit > op.Capacity {
					admit = op.Capacity
				}
				carry[oi] -= admit
				// Selectivity applied probabilistically for realism.
				passed := 0.0
				whole := math.Floor(admit * op.Sel)
				passed += whole
				if rng.Float64() < admit*op.Sel-whole {
					passed++
				}
				if oi == len(order)-1 {
					emitted += passed
				} else {
					carry[oi+1] += passed
				}
			}
			// Overloaded queues drop (streaming: no infinite buffering).
			for i := range carry {
				if cap := ops[order[i]].Capacity; !math.IsInf(cap, 1) && carry[i] > cap {
					carry[i] = cap
				}
			}
		}
		return emitted / float64(simSecs)
	}
	for _, p := range plans {
		name := strings.Join(p.Names(ops), " -> ")
		t.AddRow(name, p.Output, simulate(p.Order), p.Cost)
	}
	t.Notes = append(t.Notes,
		"expected shape: fast-first sustains 5 t/s, slow-first 0.5 t/s — the 10x of slide 41")
	return t
}

// E4SchedulingBacklog reproduces the slide-43 table exactly, then sweeps
// a longer bursty workload comparing FIFO / RoundRobin / Greedy / Chain
// peak backlog.
func E4SchedulingBacklog(scale Scale) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "operator scheduling: backlog (slide 43, [BBDM03])",
		Header: []string{"workload", "policy", "peakBacklog", "avgBacklog", "processed"},
	}
	specs := []sched.OpSpec{{Sel: 0.2, Cost: 1}, {Sel: 0, Cost: 1}}
	// Exact slide-43 table.
	slide := []int{1, 1, 1, 1, 1}
	for _, p := range []sched.Policy{sched.FIFO{}, sched.Greedy{}} {
		s, err := sched.NewSim(specs, p)
		if err != nil {
			panic(err)
		}
		s.Run(5, slide)
		cells := make([]string, 0, 5)
		for _, b := range s.Backlog {
			cells = append(cells, fmt.Sprintf("%.1f", b))
		}
		t.AddRow("slide-43 (t=0..4)", p.Name(), s.PeakBacklog,
			strings.Join(cells, ","), s.Processed)
	}
	// Bursty sweep.
	// Every tuple costs one invocation at each operator, so stability
	// needs under 0.5 arrivals/tick; bursts of 2 at p=0.2 give 0.4.
	ticks := scale.N(20000)
	arrivals := make([]int, ticks)
	rng := rand.New(rand.NewSource(4))
	for i := range arrivals {
		if rng.Float64() < 0.2 {
			arrivals[i] = 2
		}
	}
	for _, p := range []sched.Policy{sched.FIFO{}, &sched.RoundRobin{}, sched.Greedy{}, &sched.Chain{}} {
		s, err := sched.NewSim(specs, p)
		if err != nil {
			panic(err)
		}
		s.Run(ticks+200, arrivals)
		sum := 0.0
		for _, b := range s.Backlog {
			sum += b
		}
		t.AddRow("bursty 0.4 t/tick", p.Name(), s.PeakBacklog,
			fmt.Sprintf("%.2f", sum/float64(len(s.Backlog))), s.Processed)
	}
	t.Notes = append(t.Notes,
		"expected shape: slide-43 rows read FIFO 1,1.2,2,2.2,3 vs Greedy 1,1.2,1.4,1.6,1.8; Greedy/Chain hold lower peaks under bursts")
	return t
}

// E5LoadShedding reproduces slide 44: random vs semantic shedding under
// a 2x overload, measured by the accuracy of a top-group (heavy hitter)
// query downstream.
func E5LoadShedding(scale Scale) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "random vs semantic load shedding (slide 44)",
		Header: []string{"dropRate", "policy", "sumErr%", "topGroupRecall"},
	}
	n := scale.N(200000)
	rng := rand.New(rand.NewSource(5))
	type rec struct{ g, v int64 }
	// 100 groups of uniform background values; the 5 heavy groups also
	// receive TEN rare large-value tuples each, which decide a top-k
	// query. This is the regime where semantic shedding matters: the
	// query-relevant tuples are few and easily lost by chance.
	var data []rec
	truthSum := map[int64]float64{}
	for i := 0; i < n; i++ {
		g := int64(rng.Intn(100))
		v := int64(rng.Intn(100))
		data = append(data, rec{g, v})
		truthSum[g] += float64(v)
	}
	const heavyPerGroup = 10
	for g := int64(0); g < 5; g++ {
		for k := 0; k < heavyPerGroup; k++ {
			data = append(data, rec{g, 1000})
			truthSum[g] += 1000
		}
	}
	var topGroups []int64
	for g := int64(0); g < 5; g++ {
		topGroups = append(topGroups, g)
	}

	// evaluate measures two things: the error of the weighted
	// (stratified scale-up) SUM estimate, and top-group recall over the
	// RAW surviving tuples — "load shedding affects queries and their
	// answers" (slide 44): the standing query sees only what survives.
	evaluate := func(pass func(rec) bool, weight func(rec) float64) (float64, float64) {
		est := map[int64]float64{}
		raw := map[int64]float64{}
		for _, r := range data {
			if pass(r) {
				est[r.g] += float64(r.v) * weight(r)
				raw[r.g] += float64(r.v)
			}
		}
		var truthTotal, estTotal float64
		for g, s := range truthSum {
			truthTotal += s
			estTotal += est[g]
		}
		sumErr := math.Abs(estTotal-truthTotal) / truthTotal * 100
		type kv struct {
			g int64
			s float64
		}
		var all []kv
		for g, s := range raw {
			all = append(all, kv{g, s})
		}
		for i := 1; i < len(all); i++ {
			for j := i; j > 0 && all[j].s > all[j-1].s; j-- {
				all[j], all[j-1] = all[j-1], all[j]
			}
		}
		hit := 0
		for i := 0; i < 5 && i < len(all); i++ {
			for _, tg := range topGroups {
				if all[i].g == tg {
					hit++
				}
			}
		}
		return sumErr, float64(hit) / 5
	}

	for _, drop := range []float64{0.5, 0.9, 0.99} {
		rrng := rand.New(rand.NewSource(55))
		w := 1 / (1 - drop)
		sumErr, recall := evaluate(
			func(rec) bool { return rrng.Float64() >= drop },
			func(rec) float64 { return w })
		t.AddRow(drop, "random", sumErr, recall)
		// Semantic: always keep the query-relevant tuples (v >= 1000),
		// shed the background at the same overall rate, and scale only
		// the sampled stratum in the SUM estimate.
		srng := rand.New(rand.NewSource(56))
		rw := 1 / (1 - drop)
		sumErr2, recall2 := evaluate(
			func(r rec) bool {
				if r.v >= 1000 {
					return true
				}
				return srng.Float64() >= drop
			},
			func(r rec) float64 {
				if r.v >= 1000 {
					return 1
				}
				return rw
			})
		t.AddRow(drop, "semantic", sumErr2, recall2)
	}
	t.Notes = append(t.Notes,
		"expected shape: semantic shedding keeps the query-relevant tuples, holding top-group recall at 1.0 where random loses the rare heavy tuples")
	return t
}

// E16EddyAdaptivity reproduces slide 22's motivation: a fixed plan
// ordered for the initial distribution degrades after selectivities
// drift; the eddy re-adapts.
func E16EddyAdaptivity(scale Scale) *Table {
	t := &Table{
		ID:     "E16",
		Title:  "adaptive (eddy) vs fixed plan under selectivity drift (slide 22)",
		Header: []string{"phase", "plan", "evalsPerTuple", "survivors"},
	}
	sch := tuple.NewSchema("S",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "a", Kind: tuple.KindInt},
		tuple.Field{Name: "b", Kind: tuple.KindInt},
	)
	mkFilters := func() []*adaptive.Filter {
		fa, _ := expr.NewBin(expr.OpLt, expr.MustColumn(sch, "a"), expr.Constant(tuple.Int(50)))
		fb, _ := expr.NewBin(expr.OpLt, expr.MustColumn(sch, "b"), expr.Constant(tuple.Int(50)))
		return []*adaptive.Filter{
			{Name: "fa", Pred: fa, Cost: 1},
			{Name: "fb", Pred: fb, Cost: 1},
		}
	}
	n := scale.N(100000)
	phases := []struct {
		name string
		gen  func(i int64) *tuple.Tuple
	}{
		// Phase 1: fa drops nearly everything.
		{"phase1 (fa selective)", func(i int64) *tuple.Tuple {
			return tuple.New(i, tuple.Time(i), tuple.Int(90+i%20), tuple.Int(i%40))
		}},
		// Phase 2: swap — fb drops nearly everything.
		{"phase2 (fb selective)", func(i int64) *tuple.Tuple {
			return tuple.New(i, tuple.Time(i), tuple.Int(i%40), tuple.Int(90+i%20))
		}},
	}
	eddy, err := adaptive.NewEddy(mkFilters(), 0.5, 100)
	if err != nil {
		panic(err)
	}
	fixed, err := adaptive.NewFixedPlan(mkFilters()) // ordered for phase 1... backwards
	if err != nil {
		panic(err)
	}
	for _, ph := range phases {
		eIn0, _, eEv0 := eddy.Stats()
		fIn0, _, fEv0 := fixed.Stats()
		var eOut, fOut int64
		for i := int64(0); i < int64(n); i++ {
			tp := ph.gen(i)
			if eddy.Process(tp) {
				eOut++
			}
			if fixed.Process(tp) {
				fOut++
			}
		}
		eIn, _, eEv := eddy.Stats()
		fIn, _, fEv := fixed.Stats()
		t.AddRow(ph.name, "eddy", float64(eEv-eEv0)/float64(eIn-eIn0), eOut)
		t.AddRow(ph.name, "fixed(fa,fb)", float64(fEv-fEv0)/float64(fIn-fIn0), fOut)
	}
	t.Notes = append(t.Notes,
		"expected shape: the eddy stays near 1 eval/tuple in both phases; the fixed plan pays ~2 evals/tuple in whichever phase its order mismatches")
	return t
}

// E5Controller is a companion micro-experiment: the feedback controller
// tracking an overload (slide 44 / Aurora's QoS-driven shedding).
func E5Controller() *Table {
	t := &Table{
		ID:     "E5b",
		Title:  "shedding controller convergence",
		Header: []string{"step", "offered(t/s)", "dropRate"},
	}
	r, _ := shed.NewRandom("s", stream.TrafficSchema("T"), 0, 1)
	c, err := shed.NewController(r, 1000, 0.5)
	if err != nil {
		panic(err)
	}
	offered := []float64{500, 2000, 2000, 2000, 4000, 1000, 500}
	for i, o := range offered {
		rate := c.Observe(o)
		t.AddRow(i, o, rate)
	}
	t.Notes = append(t.Notes, "expected shape: drop rate converges toward 1 - capacity/offered")
	return t
}
