package query

import (
	"reflect"
	"strings"
	"testing"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

func testCatalog() *Catalog {
	cat := NewCatalog()
	cat.Register("Traffic", tuple.NewSchema("Traffic",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "srcIP", Kind: tuple.KindIP},
		tuple.Field{Name: "destIP", Kind: tuple.KindIP},
		tuple.Field{Name: "protocol", Kind: tuple.KindUint, Bounded: true},
		tuple.Field{Name: "length", Kind: tuple.KindUint},
	))
	cat.Register("S", tuple.NewSchema("S",
		tuple.Field{Name: "tstmp", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "srcIP", Kind: tuple.KindIP},
		tuple.Field{Name: "srcPort", Kind: tuple.KindUint},
	))
	cat.Register("A", tuple.NewSchema("A",
		tuple.Field{Name: "tstmp", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "destIP", Kind: tuple.KindIP},
		tuple.Field{Name: "destPort", Kind: tuple.KindUint},
	))
	return cat
}

func trafficTuple(ts int64, src, dst uint32, proto, length uint64) *tuple.Tuple {
	return tuple.New(ts,
		tuple.Time(ts), tuple.IP(src), tuple.IP(dst), tuple.Uint(proto), tuple.Uint(length))
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT x, time/60 AS tb FROM s [RANGE 60] WHERE y >= 1.5 AND name = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF")
	}
	// The escaped string must be unescaped.
	found := false
	for _, tk := range toks {
		if tk.kind == tokString && tk.text == "it's" {
			found = true
		}
	}
	if !found {
		t.Error("string escape broken")
	}
	if _, err := lex("a ; b"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestParseSlide13Query(t *testing.T) {
	// The GSQL example of slide 13.
	q, err := Parse(`select tb, srcIP, sum(length) from Traffic [range 60 seconds]
		where protocol = 6 group by time/60 as tb, srcIP having count(*) > 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 3 || len(q.GroupBy) != 2 || q.Having == nil {
		t.Fatalf("parsed shape: %+v", q)
	}
	if q.GroupBy[0].As != "tb" {
		t.Errorf("group alias = %q", q.GroupBy[0].As)
	}
	if !q.From[0].HasWindow || q.From[0].Window.Range != 60*stream.Second {
		t.Errorf("window = %+v", q.From[0].Window)
	}
}

func TestParseWindows(t *testing.T) {
	cases := map[string]window.Spec{
		"select * from Traffic [rows 100]":                 window.Rows(100),
		"select * from Traffic [range 60]":                 window.Tumbling(60 * stream.Second),
		"select * from Traffic [range 60 slide 10]":        window.Time(60*stream.Second, 10*stream.Second),
		"select * from Traffic [range 500 ms]":             window.Tumbling(stream.Second / 2),
		"select * from Traffic [range 2 minutes]":          window.Tumbling(120 * stream.Second),
		"select * from Traffic [landmark slide 5 seconds]": window.Landmark(5 * stream.Second),
		"select * from Traffic [unbounded]":                {},
	}
	for src, want := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if !reflect.DeepEqual(q.From[0].Window, want) {
			t.Errorf("%s: window = %+v, want %+v", src, q.From[0].Window, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select * from",
		"select * from Traffic [range 0]",
		"select * from Traffic [range 10 slide 60]",
		"select * from Traffic where",
		"select * from A, S, Traffic",
		"select a from Traffic group by",
		"select count(* from Traffic",
		"select * from Traffic [rows -1]",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	q, err := Parse("select a + b * c - d from Traffic")
	if err != nil {
		t.Fatal(err)
	}
	// (a + (b*c)) - d
	if got := Render(q.Select[0].Expr); got != "((a + (b * c)) - d)" {
		t.Errorf("precedence rendering = %q", got)
	}
	q2, _ := Parse("select * from Traffic where not a = 1 or b = 2 and c = 3")
	want := "(NOT (a = 1) OR ((b = 2) AND (c = 3)))"
	if got := Render(q2.Where); got != want {
		t.Errorf("boolean precedence = %q, want %q", got, want)
	}
}

func TestRunSimpleSelect(t *testing.T) {
	cat := testCatalog()
	src := stream.FromTuples(cat.schemas["Traffic"],
		trafficTuple(1, 1, 2, 6, 100),
		trafficTuple(2, 3, 4, 17, 800),
		trafficTuple(3, 5, 6, 6, 900),
	)
	rows, plan, err := Run(
		"select srcIP, length from Traffic where protocol = 6 and length > 512",
		cat, map[string]stream.Source{"Traffic": src}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if v, _ := rows[0].Vals[1].AsUint(); v != 900 {
		t.Errorf("length = %d", v)
	}
	if plan.OutSchema.Arity() != 2 || plan.OutSchema.Fields[0].Name != "srcIP" {
		t.Errorf("schema = %s", plan.OutSchema)
	}
	if !strings.Contains(plan.Explain(), "select") {
		t.Error("explain missing selection")
	}
}

func TestRunSelectStar(t *testing.T) {
	cat := testCatalog()
	src := stream.FromTuples(cat.schemas["Traffic"], trafficTuple(1, 1, 2, 6, 100))
	rows, plan, err := Run("select * from Traffic", cat,
		map[string]stream.Source{"Traffic": src}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Vals) != 5 {
		t.Fatalf("rows = %v", rows)
	}
	if plan.OutSchema.Name != "Traffic" {
		t.Errorf("schema = %s", plan.OutSchema)
	}
}

func TestRunDistinct(t *testing.T) {
	cat := testCatalog()
	src := stream.FromTuples(cat.schemas["Traffic"],
		trafficTuple(1, 1, 2, 6, 700),
		trafficTuple(2, 1, 2, 6, 700),
		trafficTuple(3, 9, 2, 6, 700),
	)
	rows, _, err := Run("select distinct srcIP from Traffic where length > 512",
		cat, map[string]stream.Source{"Traffic": src}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("distinct rows = %d, want 2", len(rows))
	}
}

func TestRunAggregateQuery(t *testing.T) {
	cat := testCatalog()
	// Two tumbling 60s windows of traffic.
	var tuples []*tuple.Tuple
	for i := int64(0); i < 10; i++ {
		tuples = append(tuples, trafficTuple(i*stream.Second, uint32(i%2), 9, 6, 100))
	}
	tuples = append(tuples, trafficTuple(61*stream.Second, 0, 9, 6, 500))
	src := stream.FromTuples(cat.schemas["Traffic"], tuples...)
	rows, plan, err := Run(
		"select srcIP, count(*) as cnt, sum(length) as bytes from Traffic [range 60] group by srcIP",
		cat, map[string]stream.Source{"Traffic": src}, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Window 1: srcIP 0 (5 tuples) and 1 (5 tuples); window 2: srcIP 0 (1).
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if c, _ := rows[0].Vals[1].AsInt(); c != 5 {
		t.Errorf("first count = %d", c)
	}
	if b, _ := rows[2].Vals[2].AsFloat(); b != 500 {
		t.Errorf("second window bytes = %v", b)
	}
	if !plan.IsAgg {
		t.Error("plan not marked aggregate")
	}
}

func TestRunSlide13HavingQuery(t *testing.T) {
	cat := testCatalog()
	var tuples []*tuple.Tuple
	// srcIP 1: 7 packets; srcIP 2: 3 packets, all in one minute bucket.
	for i := int64(0); i < 7; i++ {
		tuples = append(tuples, trafficTuple(i*stream.Second, 1, 9, 6, 100))
	}
	for i := int64(0); i < 3; i++ {
		tuples = append(tuples, trafficTuple((10+i)*stream.Second, 2, 9, 6, 100))
	}
	src := stream.FromTuples(cat.schemas["Traffic"], tuples...)
	rows, _, err := Run(
		`select tb, srcIP, sum(length) as bytes from Traffic [range 60]
		 where protocol = 6 group by time/60000000000 as tb, srcIP having count(*) > 5`,
		cat, map[string]stream.Source{"Traffic": src}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1 (only srcIP 1 exceeds 5)", len(rows))
	}
	if ip, _ := rows[0].Vals[1].AsUint(); ip != 1 {
		t.Errorf("srcIP = %d", ip)
	}
	if b, _ := rows[0].Vals[2].AsFloat(); b != 700 {
		t.Errorf("bytes = %v", b)
	}
}

func TestRunJoinQuery(t *testing.T) {
	cat := testCatalog()
	sSch, _ := cat.Lookup("S")
	aSch, _ := cat.Lookup("A")
	mkS := func(ts int64, ip uint32, port uint64) *tuple.Tuple {
		return tuple.New(ts, tuple.Time(ts), tuple.IP(ip), tuple.Uint(port))
	}
	mkA := func(ts int64, ip uint32, port uint64) *tuple.Tuple {
		return tuple.New(ts, tuple.Time(ts), tuple.IP(ip), tuple.Uint(port))
	}
	syn := stream.FromTuples(sSch,
		mkS(1*stream.Second, 10, 80),
		mkS(2*stream.Second, 11, 443),
	)
	ack := stream.FromTuples(aSch,
		mkA(3*stream.Second, 10, 80),  // matches first syn: rtt 2s
		mkA(4*stream.Second, 12, 443), // no match
	)
	// The slide-13 RTT query shape.
	rows, plan, err := Run(
		`select S.tstmp, A.tstmp - S.tstmp as rtt from S [range 30], A [range 30]
		 where S.srcIP = A.destIP and S.srcPort = A.destPort`,
		cat, map[string]stream.Source{"S": syn, "A": ack}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.IsJoin {
		t.Error("plan not marked join")
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rtt, _ := rows[0].Vals[1].AsInt(); rtt != 2*stream.Second {
		t.Errorf("rtt = %d", rtt)
	}
}

func TestJoinPushdown(t *testing.T) {
	cat := testCatalog()
	q, err := Parse(`select * from S [range 30], A [range 30]
		where S.srcIP = A.destIP and S.srcPort > 1024 and A.destPort < 80`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "2 pushdowns") {
		t.Errorf("pushdowns missing: %s", plan.Explain())
	}
}

func TestBoundedMemoryAnalysisSlide36(t *testing.T) {
	cat := testCatalog()
	// First slide-36 query: group by length with only a lower bound —
	// unbounded memory.
	q1, err := Parse("select length, count(*) from Traffic [range 60] where length > 512 group by length")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Compile(q1, cat)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Bounded.OK {
		t.Errorf("q1 should be unbounded: %v", p1.Bounded)
	}
	// Second slide-36 query: two-sided range — bounded.
	q2, err := Parse("select length, count(*) from Traffic [range 60] where length > 512 and length < 1024 group by length")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(q2, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Bounded.OK {
		t.Errorf("q2 should be bounded: %v", p2.Bounded)
	}
	// Grouping on a Bounded-flagged column is bounded.
	q3, _ := Parse("select protocol, count(*) from Traffic [range 60] group by protocol")
	p3, err := Compile(q3, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !p3.Bounded.OK {
		t.Errorf("q3 should be bounded: %v", p3.Bounded)
	}
	// Exact holistic aggregate: unbounded; WITH APPROX: bounded.
	q4, _ := Parse("select protocol, median(length) from Traffic [range 60] group by protocol")
	p4, err := Compile(q4, cat)
	if err != nil {
		t.Fatal(err)
	}
	if p4.Bounded.OK {
		t.Error("exact median should be unbounded")
	}
	q5, _ := Parse("select protocol, median(length) from Traffic [range 60] group by protocol with approx")
	p5, err := Compile(q5, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !p5.Bounded.OK {
		t.Errorf("approx median should be bounded: %v", p5.Bounded)
	}
}

func TestStreamableAnalysis(t *testing.T) {
	cat := testCatalog()
	// Grouping includes time bucketing: streamable [JMS95].
	q1, _ := Parse("select tb, count(*) from Traffic group by time/60 as tb")
	p1, err := Compile(q1, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Streamable {
		t.Error("time-bucketed aggregate should be streamable")
	}
	q2, _ := Parse("select srcIP, count(*) from Traffic group by srcIP")
	p2, err := Compile(q2, cat)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Streamable {
		t.Error("srcIP grouping should not be streamable")
	}
}

func TestCompileErrors(t *testing.T) {
	cat := testCatalog()
	bad := []string{
		"select * from Nope",
		"select nosuchcol from Traffic",
		"select srcIP from S, A where S.srcIP = A.destIP group by srcIP",
		"select count(*) from Traffic [rows 10]",
		"select length from Traffic group by length",              // no aggregates
		"select median(length, 2) from Traffic group by protocol", // arity
		"select sum(*) from Traffic",
		"select * from Traffic group by srcIP",
		"select srcIP from Traffic having count(*) > 1",
		"select distinct srcIP, count(*) from Traffic group by srcIP",
		"select length from Traffic where count(*) > 1",
		"select srcPort from S, A where S.srcIP = A.destIP and srcPort > 1", // srcPort unambiguous but fine... keep valid ones out
	}
	for _, src := range bad[:11] {
		q, err := Parse(src)
		if err != nil {
			continue // parse-time rejection also acceptable
		}
		if _, err := Compile(q, cat); err == nil {
			t.Errorf("compiled %q", src)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	cat := NewCatalog()
	cat.Register("X", tuple.NewSchema("X",
		tuple.Field{Name: "t", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt}))
	cat.Register("Y", tuple.NewSchema("Y",
		tuple.Field{Name: "t", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt}))
	q, err := Parse("select k from X, Y where X.k = Y.k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(q, cat); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column accepted: %v", err)
	}
}

func TestRunApproxAggregate(t *testing.T) {
	cat := testCatalog()
	var tuples []*tuple.Tuple
	for i := int64(0); i < 1000; i++ {
		tuples = append(tuples, trafficTuple(i, 1, 2, 6, uint64(i%100)))
	}
	src := stream.FromTuples(cat.schemas["Traffic"], tuples...)
	rows, _, err := Run(
		"select protocol, count_distinct(length) as d from Traffic group by protocol with approx",
		cat, map[string]stream.Source{"Traffic": src}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	d, _ := rows[0].Vals[1].AsInt()
	if d < 60 || d > 160 {
		t.Errorf("approx distinct = %d, want ~100", d)
	}
}

func TestAggregateExpressionOverAggregates(t *testing.T) {
	cat := testCatalog()
	var tuples []*tuple.Tuple
	for i := int64(0); i < 4; i++ {
		tuples = append(tuples, trafficTuple(i, 1, 2, 6, 100))
	}
	src := stream.FromTuples(cat.schemas["Traffic"], tuples...)
	// Arithmetic over aggregate results in the SELECT list.
	rows, _, err := Run(
		"select sum(length) / count(*) as avg_len from Traffic group by protocol",
		cat, map[string]stream.Source{"Traffic": src}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if v, _ := rows[0].Vals[0].AsFloat(); v != 100 {
		t.Errorf("avg_len = %v", v)
	}
}
