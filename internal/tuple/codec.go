package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The binary tuple encoding is used by the XJoin disk-spill partitions
// (slide 31), the Hancock persistent signature store, and the distributed
// 3-level architecture's TCP transport (slide 55). Layout:
//
//	varint ts | varint nvals | per value: kind byte + payload
//
// Integral payloads are varints; floats are 8 fixed bytes; strings are
// length-prefixed. The format is self-describing so readers do not need
// the schema, but schema-checked decoding is available via DecodeChecked.

// AppendEncode appends the encoding of t to buf and returns the extended
// slice.
func AppendEncode(buf []byte, t *Tuple) []byte {
	buf = binary.AppendVarint(buf, t.Ts)
	buf = binary.AppendUvarint(buf, uint64(len(t.Vals)))
	for _, v := range t.Vals {
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case KindNull:
		case KindFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.f))
		case KindString:
			buf = binary.AppendUvarint(buf, uint64(len(v.s)))
			buf = append(buf, v.s...)
		default:
			buf = binary.AppendUvarint(buf, v.num)
		}
	}
	return buf
}

// Decode parses one tuple from buf, returning the tuple and the number of
// bytes consumed.
func Decode(buf []byte) (*Tuple, int, error) {
	ts, n := binary.Varint(buf)
	if n <= 0 {
		return nil, 0, fmt.Errorf("tuple: truncated timestamp")
	}
	off := n
	nvals, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("tuple: truncated arity")
	}
	off += n
	if nvals > uint64(len(buf)) { // cheap sanity bound: >=1 byte per value
		return nil, 0, fmt.Errorf("tuple: arity %d exceeds buffer", nvals)
	}
	vals := make([]Value, nvals)
	for i := range vals {
		if off >= len(buf) {
			return nil, 0, fmt.Errorf("tuple: truncated value %d", i)
		}
		k := Kind(buf[off])
		off++
		switch k {
		case KindNull:
			vals[i] = Null
		case KindFloat:
			if off+8 > len(buf) {
				return nil, 0, fmt.Errorf("tuple: truncated float")
			}
			vals[i] = Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
			off += 8
		case KindString:
			ln, n := binary.Uvarint(buf[off:])
			if n <= 0 {
				return nil, 0, fmt.Errorf("tuple: truncated string")
			}
			off += n
			// Compare in uint64 space: a huge ln converted to int could
			// wrap off+n+int(ln) negative and slip past the bound.
			if ln > uint64(len(buf)-off) {
				return nil, 0, fmt.Errorf("tuple: truncated string")
			}
			vals[i] = String(string(buf[off : off+int(ln)]))
			off += int(ln)
		case KindInt, KindUint, KindBool, KindIP, KindTime:
			num, n := binary.Uvarint(buf[off:])
			if n <= 0 {
				return nil, 0, fmt.Errorf("tuple: truncated integral value")
			}
			off += n
			vals[i] = Value{Kind: k, num: num}
		default:
			return nil, 0, fmt.Errorf("tuple: unknown kind %d", k)
		}
	}
	return &Tuple{Ts: ts, Vals: vals}, off, nil
}

// DecodeChecked decodes a tuple and verifies it against the schema: arity
// must match and every non-NULL value must have the declared kind.
func DecodeChecked(buf []byte, s *Schema) (*Tuple, int, error) {
	t, n, err := Decode(buf)
	if err != nil {
		return nil, 0, err
	}
	if len(t.Vals) != s.Arity() {
		return nil, 0, fmt.Errorf("tuple: arity %d does not match schema %s", len(t.Vals), s)
	}
	for i, v := range t.Vals {
		if v.Kind != KindNull && v.Kind != s.Fields[i].Kind {
			return nil, 0, fmt.Errorf("tuple: field %s is %s, schema wants %s",
				s.Fields[i].Name, v.Kind, s.Fields[i].Kind)
		}
	}
	return t, n, nil
}
