// Web client performance monitoring: the slide 11/13 application. TCP
// SYN and SYN-ACK streams are correlated with a windowed equijoin — the
// exact query of slide 13 — and per-server round-trip-time statistics
// are reported, with a GK quantile summary providing tail latency in
// bounded memory (slide 53).
package main

import (
	"fmt"
	"log"

	"streamdb"
	"streamdb/internal/netmon"
	"streamdb/internal/synopsis"
)

func main() {
	ht := netmon.NewHandshakeTrace(netmon.HandshakeConfig{
		Seed:     3,
		Rate:     5000,
		RTTMu:    -2.5, // lognormal: median ~82ms
		RTTSigma: 0.8,
		LossProb: 0.03,
		Servers:  8,
	}, 100000)

	eng := streamdb.New()
	eng.RegisterSchema("tcp_syn", ht.Syn.Schema())
	eng.RegisterSchema("tcp_syn_ack", ht.Ack.Schema())
	eng.SetSource("tcp_syn", ht.Syn)
	eng.SetSource("tcp_syn_ack", ht.Ack)

	// Slide 13's query: match the SYN with the SYN-ACK whose endpoints
	// mirror it, within a 30-second window on each stream.
	res, err := eng.Query(`select ip4(S.destIP) as server,
			A.tstmp - S.tstmp as rtt
		from tcp_syn [range 30] S, tcp_syn_ack [range 30] A
		where S.srcIP = A.destIP and S.destIP = A.srcIP
		  and S.srcPort = A.destPort and S.destPort = A.srcPort`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("handshakes: %d answered, %d matched by the join (3%% SYN loss injected)\n\n",
		len(ht.TrueRTTs), len(res.Rows))

	// Per-server latency statistics with bounded-memory quantiles.
	perServer := map[string]*synopsis.GK{}
	for _, r := range res.Rows {
		server, _ := r.Vals[0].AsString()
		rtt, _ := r.Vals[1].AsInt()
		gk := perServer[server]
		if gk == nil {
			gk = synopsis.NewGK(0.005)
			perServer[server] = gk
		}
		gk.Add(float64(rtt) / 1e6) // ms
	}
	fmt.Println("server           n        p50(ms)  p95(ms)  p99(ms)")
	for server, gk := range perServer {
		p50, _ := gk.Query(0.5)
		p95, _ := gk.Query(0.95)
		p99, _ := gk.Query(0.99)
		fmt.Printf("%-15s  %-7d  %-7.1f  %-7.1f  %-7.1f\n", server, gk.N(), p50, p95, p99)
	}

	// Sanity against ground truth.
	truth := synopsis.NewGK(0.005)
	for _, rtt := range ht.TrueRTTs {
		truth.Add(float64(rtt) / 1e6)
	}
	t50, _ := truth.Query(0.5)
	fmt.Printf("\nground-truth median RTT: %.1f ms\n", t50)
}
