package exec

import (
	"sort"
	"sync/atomic"
	"testing"

	"streamdb/internal/agg"
	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

var sch = tuple.NewSchema("S",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "v", Kind: tuple.KindInt},
)

func el(ts, v int64) stream.Element {
	return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(v)))
}

func mustSelect(t *testing.T, threshold int64) *ops.Select {
	t.Helper()
	pred, err := expr.NewBin(expr.OpGt, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(threshold)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ops.NewSelect("sel", sch, pred, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunSingleChain(t *testing.T) {
	var got []int64
	g := NewGraph(func(e stream.Element) {
		v, _ := e.Tuple.Vals[1].AsInt()
		got = append(got, v)
	})
	src := g.AddSource(stream.FromElements(sch, el(1, 5), el(2, 15), el(3, 25)))
	n := g.AddOp(mustSelect(t, 10))
	if err := g.ConnectSource(src, n, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(n); err != nil {
		t.Fatal(err)
	}
	if consumed := g.Run(-1); consumed != 3 {
		t.Errorf("consumed = %d", consumed)
	}
	if len(got) != 2 || got[0] != 15 || got[1] != 25 {
		t.Errorf("got = %v", got)
	}
	st := g.Stats(n)
	if st.In != 3 || st.Out != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRunMergesSourcesByTimestamp(t *testing.T) {
	var order []int64
	g := NewGraph(func(e stream.Element) { order = append(order, e.Ts()) })
	a := g.AddSource(stream.FromElements(sch, el(1, 1), el(5, 1), el(9, 1)))
	b := g.AddSource(stream.FromElements(sch, el(2, 1), el(3, 1), el(10, 1)))
	u := g.AddOp(ops.NewUnion("u", sch))
	if err := g.ConnectSource(a, u, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectSource(b, u, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(u); err != nil {
		t.Fatal(err)
	}
	g.Run(-1)
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Errorf("virtual-time order violated: %v", order)
	}
	if len(order) != 6 {
		t.Errorf("len = %d", len(order))
	}
}

func TestRunMaxElements(t *testing.T) {
	g := NewGraph(nil)
	src := g.AddSource(stream.Limit(stream.NewTrafficStream(1, 1000, 10), 1000))
	n := g.AddOp(ops.NewDupElim("d", stream.TrafficSchema("Traffic"), []int{1}, 0))
	if err := g.ConnectSource(src, n, 0); err != nil {
		t.Fatal(err)
	}
	if consumed := g.Run(100); consumed != 100 {
		t.Errorf("consumed = %d", consumed)
	}
}

func TestRunTwoInputJoin(t *testing.T) {
	a := tuple.NewSchema("A",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt},
	)
	b := tuple.NewSchema("B",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt},
	)
	mk := func(s *tuple.Schema, ts, k int64) stream.Element {
		return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(k)))
	}
	j, err := ops.NewWindowJoin("j", a, b,
		ops.JoinConfig{Window: window.Tumbling(100), Method: ops.JoinHash, Key: []int{1}},
		ops.JoinConfig{Window: window.Tumbling(100), Method: ops.JoinHash, Key: []int{1}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	g := NewGraph(func(stream.Element) { count++ })
	sa := g.AddSource(stream.FromElements(a, mk(a, 1, 7), mk(a, 4, 8)))
	sb := g.AddSource(stream.FromElements(b, mk(b, 2, 7), mk(b, 3, 8), mk(b, 5, 9)))
	nj := g.AddOp(j)
	if err := g.ConnectSource(sa, nj, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectSource(sb, nj, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(nj); err != nil {
		t.Fatal(err)
	}
	g.Run(-1)
	if count != 2 {
		t.Errorf("join results = %d, want 2", count)
	}
}

func TestFlushPropagatesThroughPipeline(t *testing.T) {
	// Unbounded aggregate only emits at flush; its output must still
	// traverse a downstream operator.
	cnt, _ := agg.Lookup("count", false)
	gb, err := agg.NewGroupBy("g", sch, nil, nil,
		[]agg.Spec{{Fn: cnt, Name: "c"}}, window.Spec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	outSch := gb.OutSchema()
	pred, _ := expr.NewBin(expr.OpGt, expr.MustColumn(outSch, "c"), expr.Constant(tuple.Int(0)))
	after, _ := ops.NewSelect("after", outSch, pred, -1, 1)

	var got []stream.Element
	g := NewGraph(func(e stream.Element) { got = append(got, e) })
	src := g.AddSource(stream.FromElements(sch, el(1, 1), el(2, 2)))
	n1 := g.AddOp(gb)
	n2 := g.AddOp(after)
	if err := g.ConnectSource(src, n1, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(n1, n2, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(n2); err != nil {
		t.Fatal(err)
	}
	g.Run(-1)
	if len(got) != 1 {
		t.Fatalf("got = %v", got)
	}
	if c, _ := got[0].Tuple.Vals[1].AsInt(); c != 2 {
		t.Errorf("count = %d", c)
	}
}

func TestWorkCapDropsUnderOverload(t *testing.T) {
	// A fan-out that amplifies one arrival into many pending items hits
	// the work cap.
	var got int64
	g := NewGraph(func(stream.Element) { got++ })
	src := g.AddSource(stream.FromElements(sch, el(1, 1), el(2, 2), el(3, 3)))
	n := g.AddOp(ops.NewUnion("u", sch))
	if err := g.ConnectSource(src, n, 0); err != nil {
		t.Fatal(err)
	}
	// Fan the union's output to itself-like chains: 8 parallel edges to sink.
	for i := 0; i < 8; i++ {
		if err := g.ConnectOut(n); err != nil {
			t.Fatal(err)
		}
	}
	g.SetWorkCap(4)
	g.Run(-1)
	if g.Dropped() == 0 {
		t.Error("no drops under overload")
	}
	if got+g.Dropped() != 3*8 {
		t.Errorf("got %d + dropped %d != 24", got, g.Dropped())
	}
}

func TestConnectValidation(t *testing.T) {
	g := NewGraph(nil)
	n := g.AddOp(mustSelect(t, 0))
	if err := g.ConnectSource(9, n, 0); err == nil {
		t.Error("bad source accepted")
	}
	if err := g.ConnectSource(0, n, 0); err == nil {
		t.Error("nonexistent source accepted")
	}
	src := g.AddSource(stream.FromElements(sch))
	if err := g.ConnectSource(src, NodeID(9), 0); err == nil {
		t.Error("bad node accepted")
	}
	if err := g.ConnectSource(src, n, 5); err == nil {
		t.Error("bad port accepted")
	}
	if err := g.Connect(NodeID(9), n, 0); err == nil {
		t.Error("bad from node accepted")
	}
	if err := g.ConnectOut(NodeID(9)); err == nil {
		t.Error("bad out node accepted")
	}
}

func TestRunConcurrentMatchesSequentialCounts(t *testing.T) {
	mkGraph := func(sink Sink) *Graph {
		g := NewGraph(sink)
		src := g.AddSource(stream.Limit(stream.NewTrafficStream(3, 5000, 50), 2000))
		tr := stream.TrafficSchema("Traffic")
		pred, _ := expr.NewBin(expr.OpGt, expr.MustColumn(tr, "length"), expr.Constant(tuple.Int(512)))
		sel, _ := ops.NewSelect("sel", tr, pred, -1, 1)
		n := g.AddOp(sel)
		if err := g.ConnectSource(src, n, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectOut(n); err != nil {
			t.Fatal(err)
		}
		return g
	}
	var seq int64
	mkGraph(func(stream.Element) { seq++ }).Run(-1)
	var conc int64
	mkGraph(func(stream.Element) { atomic.AddInt64(&conc, 1) }).RunConcurrent(-1, 16)
	if seq == 0 || seq != conc {
		t.Errorf("sequential %d != concurrent %d", seq, conc)
	}
}

func TestRunConcurrentJoinCompleteness(t *testing.T) {
	// Symmetric hash join over unbounded windows: result count is
	// order-insensitive, so concurrent mode must match the reference.
	a := tuple.NewSchema("A",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt},
	)
	b := tuple.NewSchema("B",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt},
	)
	var as, bs []stream.Element
	for i := int64(0); i < 200; i++ {
		as = append(as, stream.Tup(tuple.New(i, tuple.Time(i), tuple.Int(i%10))))
		bs = append(bs, stream.Tup(tuple.New(i, tuple.Time(i), tuple.Int(i%10))))
	}
	j, _ := ops.NewSymmetricHashJoin("shj", a, b, []int{1}, []int{1})
	var n int64
	g := NewGraph(func(stream.Element) { atomic.AddInt64(&n, 1) })
	sa := g.AddSource(stream.FromElements(a, as...))
	sb := g.AddSource(stream.FromElements(b, bs...))
	nj := g.AddOp(j)
	if err := g.ConnectSource(sa, nj, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectSource(sb, nj, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(nj); err != nil {
		t.Fatal(err)
	}
	g.RunConcurrent(-1, 8)
	// 200 tuples each side, 10 keys, 20 per key: 10 * 20 * 20 = 4000.
	if n != 4000 {
		t.Errorf("join results = %d, want 4000", n)
	}
}
