package streamdb

import (
	"fmt"
	"strings"
)

// Format renders a result as an ASCII table, the output shape of
// cmd/gsql and cmd/experiments.
func (r *Result) Format() string {
	headers := make([]string, r.Schema.Arity())
	widths := make([]int, r.Schema.Arity())
	for i, f := range r.Schema.Fields {
		headers[i] = f.Name
		widths[i] = len(f.Name)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row.Vals))
		for ci, v := range row.Vals {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(r.Rows))
	return b.String()
}
