package synopsis

import (
	"math"
	"math/bits"

	"streamdb/internal/tuple"
)

// hashWith applies a seeded 64-bit mix to a value hash, giving the
// independent hash families sketches require.
func hashWith(seed uint64, v tuple.Value) uint64 {
	h := v.Hash() ^ (seed * 0x9e3779b97f4a7c15)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// CountMin is the Count-Min sketch of Cormode & Muthukrishnan: point
// frequency estimates with one-sided error eps at confidence 1-delta in
// O(log(1/delta)/eps) space. Muthukrishnan is the tutorial's companion
// reference [M03] (slide 63).
type CountMin struct {
	width int
	rows  [][]uint64
	total uint64
}

// NewCountMin builds a sketch with error eps and failure probability
// delta.
func NewCountMin(eps, delta float64) *CountMin {
	width := int(math.Ceil(math.E / eps))
	depth := int(math.Ceil(math.Log(1 / delta)))
	if width < 1 {
		width = 1
	}
	if depth < 1 {
		depth = 1
	}
	rows := make([][]uint64, depth)
	for i := range rows {
		rows[i] = make([]uint64, width)
	}
	return &CountMin{width: width, rows: rows}
}

// NewCountMinBytes builds the widest depth-4 sketch that fits in the
// given memory budget; experiment E9 sweeps this.
func NewCountMinBytes(budget int) *CountMin {
	const depth = 4
	width := budget / (8 * depth)
	if width < 1 {
		width = 1
	}
	rows := make([][]uint64, depth)
	for i := range rows {
		rows[i] = make([]uint64, width)
	}
	return &CountMin{width: width, rows: rows}
}

// Add increments v's count by c.
func (cm *CountMin) Add(v tuple.Value, c uint64) {
	cm.total += c
	for i := range cm.rows {
		cm.rows[i][hashWith(uint64(i+1), v)%uint64(cm.width)] += c
	}
}

// Estimate returns an upper-bounded estimate of v's count.
func (cm *CountMin) Estimate(v tuple.Value) uint64 {
	est := uint64(math.MaxUint64)
	for i := range cm.rows {
		c := cm.rows[i][hashWith(uint64(i+1), v)%uint64(cm.width)]
		if c < est {
			est = c
		}
	}
	return est
}

// Total returns the stream length seen.
func (cm *CountMin) Total() uint64 { return cm.total }

// MemSize approximates the bytes held.
func (cm *CountMin) MemSize() int { return 32 + 8*cm.width*len(cm.rows) }

// AMS is the Alon-Matias-Szegedy F2 sketch: an unbiased estimator of the
// second frequency moment, which equals the self-join size — the
// join-size estimation tool of slide 20's synopsis toolkit.
type AMS struct {
	counters []int64
	total    int64
}

// NewAMS builds a sketch with n independent counters (variance falls as
// 1/n by averaging groups and taking medians at estimate time).
func NewAMS(n int) *AMS {
	if n <= 0 {
		n = 1
	}
	return &AMS{counters: make([]int64, n)}
}

// Add folds one occurrence of v into every counter with a ±1 hash.
func (a *AMS) Add(v tuple.Value) {
	a.total++
	for i := range a.counters {
		if hashWith(uint64(i+101), v)&1 == 0 {
			a.counters[i]++
		} else {
			a.counters[i]--
		}
	}
}

// EstimateF2 estimates the second frequency moment (self-join size) by
// the median of means over counter groups.
func (a *AMS) EstimateF2() float64 {
	const groups = 5
	n := len(a.counters)
	per := n / groups
	if per == 0 {
		per = 1
	}
	var means []float64
	for g := 0; g*per < n; g++ {
		sum := 0.0
		cnt := 0
		for i := g * per; i < (g+1)*per && i < n; i++ {
			c := float64(a.counters[i])
			sum += c * c
			cnt++
		}
		if cnt > 0 {
			means = append(means, sum/float64(cnt))
		}
	}
	// Median of the group means.
	for i := 1; i < len(means); i++ {
		for j := i; j > 0 && means[j] < means[j-1]; j-- {
			means[j], means[j-1] = means[j-1], means[j]
		}
	}
	if len(means) == 0 {
		return 0
	}
	return means[len(means)/2]
}

// MemSize approximates the bytes held.
func (a *AMS) MemSize() int { return 24 + 8*len(a.counters) }

// FM is a Flajolet-Martin (PCSA-style) distinct-count estimator: the
// approximate COUNT DISTINCT of slide 38.
type FM struct {
	bitmaps []uint64
}

// NewFM builds an estimator with m bitmaps (standard error ~0.78/sqrt(m)).
func NewFM(m int) *FM {
	if m <= 0 {
		m = 1
	}
	return &FM{bitmaps: make([]uint64, m)}
}

// Add observes a value.
func (f *FM) Add(v tuple.Value) {
	h := hashWith(7777, v)
	i := h % uint64(len(f.bitmaps))
	rest := h / uint64(len(f.bitmaps))
	r := bits.TrailingZeros64(rest | (1 << 63))
	f.bitmaps[i] |= 1 << uint(r)
}

// Estimate returns the approximate number of distinct values seen.
func (f *FM) Estimate() float64 {
	const phi = 0.77351
	sum := 0
	for _, b := range f.bitmaps {
		r := 0
		for b&(1<<uint(r)) != 0 {
			r++
		}
		sum += r
	}
	m := float64(len(f.bitmaps))
	mean := float64(sum) / m
	return m / phi * math.Pow(2, mean)
}

// MemSize approximates the bytes held.
func (f *FM) MemSize() int { return 16 + 8*len(f.bitmaps) }

// ExpHistogram is the DGIM exponential histogram: approximate count of
// 1-events in a sliding window of length W using O(log^2 W) space, the
// canonical sliding-window synopsis.
type ExpHistogram struct {
	windowLen int64
	k         int // max buckets per size before merging (error ~ 1/k)
	buckets   []ehBucket
	total     int64 // sum of live bucket sizes
}

type ehBucket struct {
	ts   int64 // most recent event in the bucket
	size int64
}

// NewExpHistogram builds a DGIM histogram over a window of windowLen
// timestamp units with relative error about 1/k.
func NewExpHistogram(windowLen int64, k int) *ExpHistogram {
	if k < 1 {
		k = 1
	}
	return &ExpHistogram{windowLen: windowLen, k: k}
}

// Add records an event at time ts (non-decreasing).
func (e *ExpHistogram) Add(ts int64) {
	e.expire(ts)
	e.buckets = append(e.buckets, ehBucket{ts: ts, size: 1})
	e.total++
	// Merge oldest pairs when more than k buckets share a size.
	for size := int64(1); ; size *= 2 {
		cnt := 0
		first, second := -1, -1
		for i := len(e.buckets) - 1; i >= 0; i-- {
			if e.buckets[i].size == size {
				cnt++
				if cnt == e.k+1 {
					second = i
				}
				if cnt == e.k+2 {
					first = i
				}
			}
		}
		if cnt <= e.k+1 || first < 0 {
			return
		}
		// Merge the two oldest buckets of this size (first is older).
		e.buckets[first].size *= 2
		e.buckets[first].ts = e.buckets[second].ts
		e.buckets = append(e.buckets[:second], e.buckets[second+1:]...)
	}
}

func (e *ExpHistogram) expire(now int64) {
	cutoff := now - e.windowLen
	for len(e.buckets) > 0 && e.buckets[0].ts <= cutoff {
		e.total -= e.buckets[0].size
		e.buckets = e.buckets[1:]
	}
}

// Estimate returns the approximate number of events in (now-W, now].
func (e *ExpHistogram) Estimate(now int64) int64 {
	e.expire(now)
	if len(e.buckets) == 0 {
		return 0
	}
	// All buckets except the oldest are exact; the oldest contributes
	// half its size on average.
	return e.total - e.buckets[0].size/2
}

// Buckets reports the number of live buckets (space used).
func (e *ExpHistogram) Buckets() int { return len(e.buckets) }

// MemSize approximates the bytes held.
func (e *ExpHistogram) MemSize() int { return 40 + 16*len(e.buckets) }
