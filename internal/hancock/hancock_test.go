package hancock

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func genCfg() GenConfig {
	return GenConfig{
		Seed: 1, Lines: 200, CallsPerLinePerDay: 3,
		FraudLines: []int{7, 42}, FraudStartDay: 2,
	}
}

func TestGenerateDayOrderedAndSized(t *testing.T) {
	calls := GenerateDay(genCfg(), 0)
	if len(calls) < 200 {
		t.Fatalf("only %d calls", len(calls))
	}
	for i := 1; i < len(calls); i++ {
		if calls[i].ConnectTime < calls[i-1].ConnectTime {
			t.Fatal("calls out of time order")
		}
	}
	// All within the day.
	for _, c := range calls {
		if c.ConnectTime < 0 || c.ConnectTime >= Day {
			t.Fatalf("call outside day: %d", c.ConnectTime)
		}
	}
	// Deterministic given seed.
	again := GenerateDay(genCfg(), 0)
	if len(again) != len(calls) || again[0].Origin != calls[0].Origin {
		t.Error("generator not deterministic")
	}
}

func TestFraudLinesBurst(t *testing.T) {
	cfg := genCfg()
	before := CollectDayStats(GenerateDay(cfg, 0))
	after := CollectDayStats(GenerateDay(cfg, 3))
	if after[7].IntlSeconds <= before[7].IntlSeconds+600 {
		t.Errorf("fraud line 7 intl: day0=%v day3=%v", before[7].IntlSeconds, after[7].IntlSeconds)
	}
	if after[7].Calls < before[7].Calls+15 {
		t.Errorf("fraud line 7 calls: day0=%v day3=%v", before[7].Calls, after[7].Calls)
	}
}

func TestIterateEventOrder(t *testing.T) {
	calls := []*CDR{
		{Origin: 2, ConnectTime: 1, Duration: 10},
		{Origin: 1, ConnectTime: 2, Duration: 20},
		{Origin: 2, ConnectTime: 3, Duration: 30, IsIncomplete: true},
		{Origin: 1, ConnectTime: 4, Duration: 40},
	}
	var trace []string
	Iterate(calls, func(c *CDR) bool { return !c.IsIncomplete }, Events{
		LineBegin: func(l uint64) { trace = append(trace, "begin") },
		Call:      func(c *CDR) { trace = append(trace, "call") },
		LineEnd:   func(l uint64) { trace = append(trace, "end") },
	})
	want := []string{"begin", "call", "call", "end", "begin", "call", "end"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestIterateEmptyAndNilEvents(t *testing.T) {
	Iterate(nil, nil, Events{})
	Iterate([]*CDR{{Origin: 1}}, nil, Events{}) // no callbacks: no panic
}

func TestCollectDayStatsFiltersIncomplete(t *testing.T) {
	calls := []*CDR{
		{Origin: 1, Duration: 100, IsTollFree: true},
		{Origin: 1, Duration: 50, IsIncomplete: true},
		{Origin: 1, Duration: 30, IsIntl: true},
	}
	stats := CollectDayStats(calls)
	s := stats[1]
	if s.Calls != 2 || s.TFSeconds != 100 || s.IntlSeconds != 30 || s.DurSum != 130 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBlendAndSignatureUpdate(t *testing.T) {
	if Blend(0.25, 100, 0) != 25 {
		t.Error("blend math wrong")
	}
	var sig Signature
	sig.Update(0.5, DayStats{Calls: 10, DurSum: 1000, IntlSeconds: 0})
	if sig.Calls != 10 || sig.AvgDur != 100 || sig.Days != 1 {
		t.Fatalf("first update: %+v", sig)
	}
	sig.Update(0.5, DayStats{Calls: 20, DurSum: 4000})
	if sig.Calls != 15 { // blend(0.5, 20, 10)
		t.Errorf("blended calls = %v", sig.Calls)
	}
	if sig.AvgDur != 150 { // blend(0.5, 200, 100)
		t.Errorf("blended avgdur = %v", sig.AvgDur)
	}
}

func TestFraudScoreSeparates(t *testing.T) {
	var sig Signature
	for i := 0; i < 5; i++ {
		sig.Update(0.3, DayStats{Calls: 5, DurSum: 500, IntlSeconds: 10})
	}
	normal := sig.FraudScore(DayStats{Calls: 5, DurSum: 500, IntlSeconds: 10})
	fraud := sig.FraudScore(DayStats{Calls: 40, DurSum: 40000, IntlSeconds: 20000})
	if fraud < 5*normal {
		t.Errorf("fraud score %v not separated from normal %v", fraud, normal)
	}
	var empty Signature
	if empty.FraudScore(DayStats{Calls: 100}) != 0 {
		t.Error("unseen line scored")
	}
}

func TestSigStoreMergeAndGet(t *testing.T) {
	store, err := NewSigStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	day := map[uint64]DayStats{
		5: {Calls: 5, DurSum: 100},
		1: {Calls: 1, DurSum: 10},
		9: {Calls: 9, DurSum: 900},
	}
	if err := store.MergeUpdate(0.3, day); err != nil {
		t.Fatal(err)
	}
	if n, _ := store.Len(); n != 3 {
		t.Fatalf("Len = %d", n)
	}
	sig, ok, err := store.Get(5)
	if err != nil || !ok || sig.Calls != 5 {
		t.Fatalf("Get(5) = %+v, %v, %v", sig, ok, err)
	}
	if _, ok, _ := store.Get(4); ok {
		t.Error("Get(4) found a ghost")
	}
	// Second day merges into existing records and adds a new one.
	day2 := map[uint64]DayStats{5: {Calls: 15, DurSum: 300}, 2: {Calls: 2, DurSum: 20}}
	if err := store.MergeUpdate(0.5, day2); err != nil {
		t.Fatal(err)
	}
	if n, _ := store.Len(); n != 4 {
		t.Fatalf("Len after day 2 = %d", n)
	}
	sig5, _, _ := store.Get(5)
	if sig5.Calls != 10 { // blend(0.5, 15, 5)
		t.Errorf("blended calls = %v", sig5.Calls)
	}
	// Keys must come out sorted.
	var keys []uint64
	store.All(func(k uint64, _ Signature) bool { keys = append(keys, k); return true })
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Errorf("keys not sorted: %v", keys)
	}
}

func TestRandomUpdateMatchesMergeUpdate(t *testing.T) {
	// Property: both strategies produce identical stores.
	f := func(seedRaw uint16) bool {
		days := []map[uint64]DayStats{
			{3: {Calls: 3}, 1: {Calls: 1}, 7: {Calls: 7}},
			{3: {Calls: 6}, 5: {Calls: 5}},
			{1: {Calls: 9}, 9: {Calls: 9}, 5: {Calls: 1}},
		}
		mdir, rdir := t.TempDir(), t.TempDir()
		ms, _ := NewSigStore(mdir)
		rs, _ := NewSigStore(rdir)
		for _, d := range days {
			if err := ms.MergeUpdate(0.5, d); err != nil {
				return false
			}
			if err := rs.RandomUpdate(0.5, d); err != nil {
				return false
			}
		}
		equal := true
		ms.All(func(k uint64, sig Signature) bool {
			other, ok, _ := rs.Get(k)
			if !ok || math.Abs(other.Calls-sig.Calls) > 1e-9 || other.Days != sig.Days {
				equal = false
			}
			return true
		})
		mn, _ := ms.Len()
		rn, _ := rs.Len()
		return equal && mn == rn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestIOStatsContrast(t *testing.T) {
	// Merge updates do sequential I/O with no seeks; random updates
	// seek per probe. This is the slide-56 contrast experiment E13
	// measures at scale.
	dir1, dir2 := t.TempDir(), t.TempDir()
	merge, _ := NewSigStore(dir1)
	random, _ := NewSigStore(dir2)
	day := map[uint64]DayStats{}
	for i := uint64(0); i < 500; i++ {
		day[i] = DayStats{Calls: float64(i)}
	}
	if err := merge.MergeUpdate(0.5, day); err != nil {
		t.Fatal(err)
	}
	if err := random.MergeUpdate(0.5, day); err != nil {
		t.Fatal(err)
	}
	merge.Stats = IOStats{}
	random.Stats = IOStats{}

	day2 := map[uint64]DayStats{}
	for i := uint64(0); i < 500; i++ {
		day2[i] = DayStats{Calls: 1}
	}
	if err := merge.MergeUpdate(0.5, day2); err != nil {
		t.Fatal(err)
	}
	if err := random.RandomUpdate(0.5, day2); err != nil {
		t.Fatal(err)
	}
	if merge.Stats.Seeks != 0 {
		t.Errorf("merge performed %d seeks", merge.Stats.Seeks)
	}
	if random.Stats.Seeks < 500 {
		t.Errorf("random performed only %d seeks", random.Stats.Seeks)
	}
}

func TestSchemaAndTuple(t *testing.T) {
	c := &CDR{Origin: 7, Dialed: 8, ConnectTime: 99, Duration: 60, IsIntl: true}
	tp := c.Tuple()
	sch := Schema("Calls")
	if len(tp.Vals) != sch.Arity() {
		t.Fatalf("arity mismatch: %d vs %d", len(tp.Vals), sch.Arity())
	}
	if v, _ := tp.Vals[sch.Index("origin")].AsUint(); v != 7 {
		t.Error("origin wrong")
	}
	if b, _ := tp.Vals[sch.Index("isIntl")].AsBool(); !b {
		t.Error("isIntl wrong")
	}
	src := Source([]*CDR{c})
	if e, ok := src.Next(); !ok || e.Ts() != 99 {
		t.Error("source broken")
	}
}
