package query

import (
	"fmt"
	"sort"
	"sync"

	"streamdb/internal/exec"
	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/optimizer/share"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// SharedPlan merges standing queries that read the same source stream
// through one shared fan-out node per stream (slide 45): each stream is
// scanned once, registered WHERE predicates are deduplicated and
// evaluated through the sharing layer's predicate trie, and per-query
// SELECT lists run as private projections over the shared node's
// selection-vector output. Queries register and drop at runtime without
// disturbing co-resident queries — no rebuild, no restart.
//
// Only queries the sharing layer can serve are accepted: a single
// stream in FROM, no aggregates, GROUP BY, HAVING, or DISTINCT. Richer
// queries keep going through Compile and their own plan.
type SharedPlan struct {
	cat *Catalog

	mu      sync.Mutex
	streams map[string]*sharedStream
	byID    map[int]sharedHandle
	nextID  int
	built   bool
}

type sharedStream struct {
	schema *tuple.Schema
	node   *share.SharedSelect
	wired  bool
}

type sharedHandle struct {
	stream string
	qid    int
}

// NewSharedPlan creates an empty multi-query plan over the catalog.
func NewSharedPlan(cat *Catalog) *SharedPlan {
	return &SharedPlan{
		cat:     cat,
		streams: make(map[string]*sharedStream),
		byID:    make(map[int]sharedHandle),
	}
}

// Shareable reports whether a parsed query fits the sharing layer, with
// the blocking feature named in err when it does not.
func Shareable(q *Query) error {
	switch {
	case len(q.From) != 1:
		return fmt.Errorf("query: sharing requires exactly one stream in FROM, got %d", len(q.From))
	case len(q.GroupBy) > 0 || queryHasAggregates(q):
		return fmt.Errorf("query: aggregation is not shareable; use Compile")
	case q.Having != nil:
		return fmt.Errorf("query: HAVING is not shareable; use Compile")
	case q.Distinct:
		return fmt.Errorf("query: DISTINCT is not shareable; use Compile")
	}
	return nil
}

// Register parses a GSQL query and attaches it to the shared node for
// its stream, returning a handle for Drop. The WHERE predicate joins
// the predicate trie (an absent WHERE registers as constant TRUE); a
// non-star SELECT list runs as a per-query projection between the
// shared node and the caller's sinks. sinks follows share.Sinks: Row is
// required and also carries punctuations; Col, when set, receives
// borrowed batch views on the columnar lane.
//
// Registration is legal before or after Build — after Build the query
// attaches to the already-wired node and starts observing traffic
// immediately — except onto a stream Build never wired, which has no
// data path and is an error.
func (sp *SharedPlan) Register(text string, sinks share.Sinks) (int, error) {
	q, err := Parse(text)
	if err != nil {
		return 0, err
	}
	if err := Shareable(q); err != nil {
		return 0, err
	}
	fi := q.From[0]
	sch, ok := sp.cat.Lookup(fi.Stream)
	if !ok {
		return 0, fmt.Errorf("query: unknown stream %q", fi.Stream)
	}
	b := &binder{streams: []*boundStream{{item: fi, schema: sch}}}
	pred := expr.Expr(expr.Constant(tuple.Bool(true)))
	if q.Where != nil {
		e, err := b.bind(q.Where)
		if err != nil {
			return 0, err
		}
		if e.Kind() != tuple.KindBool {
			return 0, fmt.Errorf("query: WHERE must be boolean")
		}
		pred = e
	}
	proj, err := sharedProjection(q, b, sch)
	if err != nil {
		return 0, err
	}

	sp.mu.Lock()
	defer sp.mu.Unlock()
	st := sp.streams[fi.Stream]
	if st == nil {
		if sp.built {
			return 0, fmt.Errorf("query: stream %q was not wired at Build time; it cannot join a running graph", fi.Stream)
		}
		st = &sharedStream{
			schema: sch,
			node:   share.NewSharedSelect("shared_"+fi.Stream, sch),
		}
		sp.streams[fi.Stream] = st
	}
	qid, err := st.node.RegisterSinks(pred, wrapProjection(proj, sinks))
	if err != nil {
		return 0, err
	}
	sp.nextID++
	id := sp.nextID
	sp.byID[id] = sharedHandle{stream: fi.Stream, qid: qid}
	return id, nil
}

// sharedProjection compiles the SELECT list into a per-query Project,
// or nil for SELECT *.
func sharedProjection(q *Query, b *binder, sch *tuple.Schema) (*ops.Project, error) {
	if len(q.Select) == 1 && q.Select[0].Star {
		return nil, nil
	}
	var exprs []expr.Expr
	var fields []tuple.Field
	for i, it := range q.Select {
		if it.Star {
			return nil, fmt.Errorf("query: * must be the only select item")
		}
		e, err := b.bind(it.Expr)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		fields = append(fields, tuple.Field{Name: itemName(it, i), Kind: e.Kind()})
	}
	return ops.NewProject("project", tuple.NewSchema("result", fields...), exprs)
}

// wrapProjection threads the shared node's per-query output through the
// query's private projection. The shared node serializes fan-out under
// its own mutex, so the single-goroutine Project is safe here.
func wrapProjection(proj *ops.Project, sinks share.Sinks) share.Sinks {
	if proj == nil {
		return sinks
	}
	out := share.Sinks{
		Row: func(e stream.Element) { proj.Push(0, e, sinks.Row) },
	}
	if sinks.Col != nil {
		out.Col = func(b *stream.Batch) {
			// The shared node lends b for the duration of the call;
			// Project consumes a reference, so take one. Its dense
			// output batch is ours to lend onward and release.
			b.Retain()
			proj.ProcessBatch(0, b, func(ob *stream.Batch) {
				sinks.Col(ob)
				ob.Release()
			}, sinks.Row)
		}
	}
	return out
}

// Drop detaches a registered query. Co-resident queries are
// undisturbed; the predicate trie prunes branches no query needs.
func (sp *SharedPlan) Drop(id int) error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	h, ok := sp.byID[id]
	if !ok {
		return fmt.Errorf("query: unknown shared query id %d", id)
	}
	delete(sp.byID, id)
	if !sp.streams[h.stream].node.Drop(h.qid) {
		return fmt.Errorf("query: shared query id %d already dropped from node", id)
	}
	return nil
}

// Build wires one source + shared fan-out node per registered stream
// into the graph, in stream-name order. After Build, Register continues
// to work against the wired streams.
func (sp *SharedPlan) Build(g *exec.Graph, sources map[string]stream.Source) error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	names := make([]string, 0, len(sp.streams))
	for name := range sp.streams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := sp.streams[name]
		src, ok := sources[name]
		if !ok {
			return fmt.Errorf("query: no source for stream %q", name)
		}
		si := g.AddSource(src)
		id, err := g.AddSharedFanOut(st.node)
		if err != nil {
			return err
		}
		if err := g.ConnectSource(si, id, 0); err != nil {
			return err
		}
		st.wired = true
	}
	sp.built = true
	return nil
}

// Node exposes the shared fan-out node for a stream (nil if no query
// over that stream is registered) — for stats and tests.
func (sp *SharedPlan) Node(stream string) *share.SharedSelect {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if st := sp.streams[stream]; st != nil {
		return st.node
	}
	return nil
}

// Queries returns the number of live registered queries.
func (sp *SharedPlan) Queries() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.byID)
}
