package experiments

import (
	"fmt"
	"hash/fnv"
	"time"

	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/optimizer/share"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// e26Predicates builds the standing-query predicate fleet: nq queries
// drawn round-robin from 16 templates over length/protocol, several of
// which are AND-conjunctions sharing a leading conjunct (so the shared
// node's prefix factoring engages) and several of which are alternate
// spellings of the same predicate (so canonical dedupe engages).
func e26Predicates(sch *tuple.Schema, nq int) []expr.Expr {
	length := expr.MustColumn(sch, "length")
	proto := expr.MustColumn(sch, "protocol")
	lit := func(n int64) expr.Expr { return expr.Constant(tuple.Int(n)) }
	bin := func(op expr.BinOp, l, r expr.Expr) expr.Expr {
		e, err := expr.NewBin(op, l, r)
		if err != nil {
			panic(err)
		}
		return e
	}
	templates := []expr.Expr{
		bin(expr.OpGt, length, lit(1200)),
		bin(expr.OpLt, lit(1200), length), // mirrored spelling of the above
		bin(expr.OpLt, length, lit(100)),
		bin(expr.OpEq, proto, lit(17)),
		bin(expr.OpEq, proto, lit(6)),
		bin(expr.OpGt, length, lit(512)),
		bin(expr.OpAnd, bin(expr.OpEq, proto, lit(6)), bin(expr.OpGt, length, lit(512))),
		bin(expr.OpAnd, bin(expr.OpGt, length, lit(512)), bin(expr.OpEq, proto, lit(6))), // commuted
		bin(expr.OpAnd, bin(expr.OpEq, proto, lit(6)), bin(expr.OpGt, length, lit(1024))),
		bin(expr.OpAnd, bin(expr.OpEq, proto, lit(6)), bin(expr.OpLt, length, lit(256))),
		bin(expr.OpAnd, bin(expr.OpEq, proto, lit(17)), bin(expr.OpGt, length, lit(700))),
		bin(expr.OpAnd, bin(expr.OpEq, proto, lit(17)), bin(expr.OpLt, length, lit(300))),
		bin(expr.OpGt, length, lit(900)),
		bin(expr.OpLt, length, lit(60)),
		bin(expr.OpGe, length, lit(1400)),
		expr.Constant(tuple.Bool(true)),
	}
	preds := make([]expr.Expr, nq)
	for q := 0; q < nq; q++ {
		preds[q] = templates[q%len(templates)]
	}
	return preds
}

// e26Batches transposes a deterministic traffic trace into column
// batches (refs start at 1, callers Retain per consuming call).
func e26Batches(sch *tuple.Schema, n, bs int) []*stream.Batch {
	src := stream.Limit(stream.NewTrafficStream(26, 100000, 5000), n)
	pool := stream.NewColPool(sch, bs)
	var batches []*stream.Batch
	cur := pool.Get()
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if e.IsPunct() {
			continue
		}
		cur.AppendRow(e.Tuple)
		if cur.Rows() == bs {
			batches = append(batches, cur)
			cur = pool.Get()
		}
	}
	if cur.Rows() > 0 {
		batches = append(batches, cur)
	} else {
		cur.Release()
	}
	return batches
}

// e26Digest accumulates a positional checksum of one query's output:
// matched-row timestamps in delivery order. Two runs producing the same
// digest sequence delivered byte-identical outputs (timestamps are
// unique in the trace).
type e26Digest struct{ h uint64 }

func (d *e26Digest) row(ts int64) {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(ts >> (8 * i))
		buf[8+i] = byte(d.h >> (8 * i))
	}
	h.Write(buf[:])
	d.h = h.Sum64()
}

func (d *e26Digest) batch(b *stream.Batch) {
	n := b.N()
	for i := 0; i < n; i++ {
		r := i
		if b.Sel != nil {
			r = int(b.Sel[i])
		}
		d.row(b.Ts[r])
	}
}

// E26SharedQueries measures batch-native shared multi-query execution:
// one scan of the same traffic trace serves 1..256 standing queries
// through a single SharedSelect, vs a per-query deployment running one
// dedicated Select per query over the same batches. Outputs are
// digest-compared per query; mid-run a transient query registers and
// drops to show churn does not disturb co-resident outputs.
func E26SharedQueries(scale Scale) *Table {
	t := &Table{
		ID:    "E26",
		Title: "batch-native shared multi-query execution: CPU vs standing-query count",
		Header: []string{"queries", "distinctPreds", "kernelNodes", "sharedEvals",
			"naiveEvals", "evalSaving", "sharedMs", "unsharedMs", "cpuSaving", "identical"},
	}
	sch := stream.TrafficSchema("Traffic")
	n := scale.N(40000)
	const bs = 256
	batches := e26Batches(sch, n, bs)
	defer func() {
		for _, b := range batches {
			b.Release()
		}
	}()
	churnOK := true

	for _, nq := range []int{1, 16, 64, 256} {
		preds := e26Predicates(sch, nq)

		// Per-query deployment: one dedicated Select per query.
		unshared := make([]e26Digest, nq)
		sels := make([]*ops.Select, nq)
		for q, p := range preds {
			sel, err := ops.NewSelect(fmt.Sprintf("q%d", q), sch, p, -1, 1)
			if err != nil {
				panic(err)
			}
			sels[q] = sel
		}
		start := time.Now()
		for _, b := range batches {
			for q, sel := range sels {
				qq := q
				b.Retain()
				sel.ProcessBatch(0, b, func(ob *stream.Batch) {
					unshared[qq].batch(ob)
					ob.Release()
				}, nil)
			}
		}
		unsharedMs := time.Since(start).Seconds() * 1e3

		// Shared deployment: every query on one fan-out node.
		ss := share.NewSharedSelect("e26", sch)
		sharedDig := make([]e26Digest, nq)
		for q, p := range preds {
			qq := q
			_, err := ss.RegisterSinks(p, share.Sinks{
				Row: func(e stream.Element) {
					if !e.IsPunct() {
						sharedDig[qq].row(e.Tuple.Ts)
					}
				},
				Col: func(b *stream.Batch) { sharedDig[qq].batch(b) },
			})
			if err != nil {
				panic(err)
			}
		}
		start = time.Now()
		for i, b := range batches {
			if i == len(batches)/2 {
				// Churn mid-run: a transient query joins and leaves.
				// Time excludes nothing — register/drop is part of the
				// shared deployment's cost.
				p, _ := expr.NewBin(expr.OpGt,
					expr.MustColumn(sch, "length"), expr.Constant(tuple.Int(333)))
				qid, err := ss.Register(p, func(stream.Element) {})
				if err != nil {
					panic(err)
				}
				ss.Drop(qid)
			}
			b.Retain()
			ss.ProcessBatch(0, b, nil, nil)
		}
		sharedMs := time.Since(start).Seconds() * 1e3

		identical := true
		for q := 0; q < nq; q++ {
			if sharedDig[q] != unshared[q] {
				identical = false
			}
		}
		churnOK = churnOK && identical
		shared, naive := ss.Stats()
		t.AddRow(nq, ss.DistinctPredicates(), ss.KernelNodes(), shared, naive,
			fmt.Sprintf("%.1fx", float64(naive)/float64(shared)),
			sharedMs, unsharedMs,
			fmt.Sprintf("%.1fx", unsharedMs/sharedMs),
			fmt.Sprint(identical))
	}
	t.Notes = append(t.Notes,
		"expected shape: shared per-batch cost is near-flat in query count for high-overlap predicate sets, so eval and CPU savings grow roughly linearly with queries",
		fmt.Sprintf("runtime register/drop mid-run left co-resident outputs byte-identical: %v", churnOK))
	return t
}
