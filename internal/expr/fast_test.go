package expr

// The fast lane must be exactly EvalBool: every compiled predicate is
// checked against the generic evaluator over a grid of operators,
// column/literal kind pairs, and adversarial tuples (NULLs, runtime
// kinds deviating from the schema, short tuples, extreme values).

import (
	"fmt"
	"math"
	"testing"

	"streamdb/internal/tuple"
)

var fastSch = tuple.NewSchema("F",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "i", Kind: tuple.KindInt},
	tuple.Field{Name: "u", Kind: tuple.KindUint},
	tuple.Field{Name: "f", Kind: tuple.KindFloat},
)

// fastTuples is the adversarial tuple grid: ordinary values, boundary
// values, NULLs in each column, runtime kinds that deviate from the
// schema (the fast lane must fall back), and a short tuple.
func fastTuples() []*tuple.Tuple {
	mk := func(vals ...tuple.Value) *tuple.Tuple { return tuple.New(0, vals...) }
	return []*tuple.Tuple{
		mk(tuple.Time(5), tuple.Int(7), tuple.Uint(7), tuple.Float(7)),
		mk(tuple.Time(10), tuple.Int(-3), tuple.Uint(0), tuple.Float(-3.5)),
		mk(tuple.Time(0), tuple.Int(math.MaxInt64), tuple.Uint(math.MaxUint64), tuple.Float(math.Inf(1))),
		mk(tuple.Time(0), tuple.Int(math.MinInt64), tuple.Uint(1), tuple.Float(math.Inf(-1))),
		mk(tuple.Time(0), tuple.Int(0), tuple.Uint(1<<63), tuple.Float(math.NaN())),
		mk(tuple.Time(3), tuple.Null, tuple.Uint(9), tuple.Float(1)),
		mk(tuple.Time(3), tuple.Int(9), tuple.Null, tuple.Null),
		// Runtime kind deviates from schema: int column holds a float, etc.
		mk(tuple.Time(3), tuple.Float(9.5), tuple.Int(-2), tuple.Uint(4)),
		mk(tuple.Time(3), tuple.Uint(12), tuple.Time(4), tuple.Int(4)),
		// Negative time bits: the generic comparator treats TIME raw
		// bits as unsigned in integral compares but signed via AsFloat.
		mk(tuple.Time(-4), tuple.Int(2), tuple.Uint(2), tuple.Float(2)),
	}
}

func fastLits() []tuple.Value {
	return []tuple.Value{
		tuple.Int(7), tuple.Int(-3), tuple.Int(0),
		tuple.Int(math.MaxInt64), tuple.Int(math.MinInt64),
		tuple.Uint(7), tuple.Uint(math.MaxUint64), tuple.Uint(1 << 63),
		tuple.Float(7), tuple.Float(-3.5), tuple.Float(0.5),
		tuple.Float(math.Inf(1)), tuple.Float(math.NaN()),
		tuple.Time(5), tuple.Time(-7),
	}
}

var cmpOps = []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}

func TestCompilePredicateMatchesEvalBool(t *testing.T) {
	cols := []string{"time", "i", "u", "f"}
	tuples := fastTuples()
	compiled := 0
	for _, cn := range cols {
		for _, lit := range fastLits() {
			for _, op := range cmpOps {
				for _, flip := range []bool{false, true} {
					var l, r Expr
					if flip {
						l, r = Constant(lit), MustColumn(fastSch, cn)
					} else {
						l, r = MustColumn(fastSch, cn), Constant(lit)
					}
					e, err := NewBin(op, l, r)
					if err != nil {
						t.Fatal(err)
					}
					p := CompilePredicate(e)
					if p == nil {
						continue // shape has no fast lane: nothing to verify
					}
					compiled++
					for ti, tp := range tuples {
						want := EvalBool(e, tp)
						if got := p(tp); got != want {
							t.Errorf("%s %v lit=%s flip=%v tuple#%d: fast=%v generic=%v",
								cn, op, lit, flip, ti, got, want)
						}
					}
				}
			}
		}
	}
	if compiled == 0 {
		t.Fatal("no predicate compiled: fast lane is dead")
	}
	t.Logf("verified %d compiled shapes against EvalBool", compiled)
}

func TestCompilePredicateBooleanComposition(t *testing.T) {
	cmp := func(cn string, op BinOp, lit tuple.Value) Expr {
		e, err := NewBin(op, MustColumn(fastSch, cn), Constant(lit))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	parts := []Expr{
		cmp("i", OpGt, tuple.Int(0)),
		cmp("u", OpLe, tuple.Uint(7)),
		cmp("f", OpNe, tuple.Float(7)),
		cmp("time", OpGe, tuple.Time(3)),
	}
	var exprs []Expr
	for i := range parts {
		for j := range parts {
			and, err := NewBin(OpAnd, parts[i], parts[j])
			if err != nil {
				t.Fatal(err)
			}
			or, err := NewBin(OpOr, parts[i], parts[j])
			if err != nil {
				t.Fatal(err)
			}
			nested, err := NewBin(OpAnd, and, or)
			if err != nil {
				t.Fatal(err)
			}
			exprs = append(exprs, and, or, nested, &Not{E: parts[i]})
		}
	}
	for ei, e := range exprs {
		p := CompilePredicate(e)
		if p == nil {
			// NOT of non-raw shapes may be skipped; AND/OR of compiled
			// parts must not be.
			if b, ok := e.(*Bin); ok && (b.Op == OpAnd || b.Op == OpOr) {
				t.Errorf("expr %d: AND/OR of compilable parts did not compile", ei)
			}
			continue
		}
		for ti, tp := range fastTuples() {
			want := EvalBool(e, tp)
			if got := p(tp); got != want {
				t.Errorf("expr %d tuple#%d: fast=%v generic=%v", ei, ti, got, want)
			}
		}
	}
}

func TestCompilePredicateRejectsUnknownShapes(t *testing.T) {
	colPlus, err := NewBin(OpAdd, MustColumn(fastSch, "i"), Constant(tuple.Int(1)))
	if err != nil {
		t.Fatal(err)
	}
	notConst, err := NewBin(OpGt, colPlus, Constant(tuple.Int(3)))
	if err != nil {
		t.Fatal(err)
	}
	colCol, err := NewBin(OpEq, MustColumn(fastSch, "i"), MustColumn(fastSch, "u"))
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range map[string]Expr{
		"arith-left": notConst,
		"col-col":    colCol,
	} {
		if CompilePredicate(e) != nil {
			t.Errorf("%s: expected no fast lane (semantics not specialized)", name)
		}
	}
}

func TestCompilePredicateNegativeLitAgainstUint(t *testing.T) {
	// uint column vs negative literal has no uint64 representation; the
	// compiler must defer to the generic path rather than wrap.
	e, err := NewBin(OpGt, MustColumn(fastSch, "u"), Constant(tuple.Int(-1)))
	if err != nil {
		t.Fatal(err)
	}
	p := CompilePredicate(e)
	tp := tuple.New(0, tuple.Time(0), tuple.Int(0), tuple.Uint(5), tuple.Float(0))
	want := EvalBool(e, tp)
	if p != nil && p(tp) != want {
		t.Errorf("uint > -1: fast=%v generic=%v", p(tp), want)
	}
	if !want {
		t.Error("sanity: 5 > -1 must be true under the generic evaluator")
	}
}

// CompileCols must return exactly the Col indices for all-column key
// lists (reproducing Col.Eval as t.Vals[idx[i]]) and refuse the fast
// lane the moment any key is computed.
func TestCompileCols(t *testing.T) {
	cols := []Expr{MustColumn(fastSch, "i"), MustColumn(fastSch, "f"), MustColumn(fastSch, "time")}
	idx := CompileCols(cols)
	if len(idx) != len(cols) {
		t.Fatalf("CompileCols returned %d indices, want %d", len(idx), len(cols))
	}
	tp := tuple.New(0, tuple.Time(5), tuple.Int(7), tuple.Uint(9), tuple.Float(2.5))
	for i, e := range cols {
		want := e.Eval(tp)
		if got := tp.Vals[idx[i]]; got != want {
			t.Errorf("key %d: t.Vals[%d] = %v, Eval = %v", i, idx[i], got, want)
		}
	}
	arith, err := NewBin(OpAdd, MustColumn(fastSch, "i"), Constant(tuple.Int(1)))
	if err != nil {
		t.Fatal(err)
	}
	if CompileCols([]Expr{MustColumn(fastSch, "i"), arith}) != nil {
		t.Error("computed key expression must disable the fast lane")
	}
	if CompileCols(nil) != nil || CompileCols([]Expr{}) != nil {
		t.Error("empty key list has no fast lane")
	}
}

func BenchmarkPredicateFastVsGeneric(b *testing.B) {
	gt, err := NewBin(OpGt, MustColumn(fastSch, "u"), Constant(tuple.Uint(512)))
	if err != nil {
		b.Fatal(err)
	}
	eq, err := NewBin(OpEq, MustColumn(fastSch, "i"), Constant(tuple.Int(6)))
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewBin(OpAnd, gt, eq)
	if err != nil {
		b.Fatal(err)
	}
	tuples := make([]*tuple.Tuple, 1024)
	for i := range tuples {
		tuples[i] = tuple.New(int64(i), tuple.Time(int64(i)), tuple.Int(int64(i%12)),
			tuple.Uint(uint64(i%1500)), tuple.Float(float64(i)))
	}
	p := CompilePredicate(e)
	if p == nil {
		b.Fatal("predicate did not compile")
	}
	b.Run("generic", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			if EvalBool(e, tuples[i%len(tuples)]) {
				n++
			}
		}
	})
	b.Run("fast", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			if p(tuples[i%len(tuples)]) {
				n++
			}
		}
	})
}

var _ = fmt.Sprintf
