package ckpt_test

// External test package: the fault injector lives in dsms, which
// (through agg) depends on ckpt, so this test cannot be in-package.

import (
	"io"
	"testing"

	"streamdb/internal/ckpt"
	"streamdb/internal/dsms"
)

func faultCheckpoint(epoch int64) *ckpt.Checkpoint {
	c := &ckpt.Checkpoint{
		Epoch:  epoch,
		OutSeq: 10 * epoch,
		Meta:   map[string]uint64{"src0": uint64(epoch)},
	}
	enc := &ckpt.Encoder{}
	enc.Varint(epoch)
	enc.String("operator state payload, long enough to tear")
	c.Add("n0", enc.Bytes())
	return c
}

// TestStoreTornCommitRejected drives the store's write path through the
// session layer's deterministic fault injector: a commit killed
// mid-write (KillAfterBytes, the byte-exact simulation of a process
// killed mid-write) must fail without touching the manifest, the
// previous generation must survive recovery, and a clean retry must
// succeed.
func TestStoreTornCommitRejected(t *testing.T) {
	s, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(faultCheckpoint(1)); err != nil {
		t.Fatal(err)
	}

	var stats *dsms.FaultWriter
	s.WrapWrites(func(w io.Writer) io.Writer {
		stats = dsms.InjectFaultWriter(w, dsms.FaultConfig{KillAfterBytes: 10})
		return stats
	})
	if err := s.Commit(faultCheckpoint(2)); err == nil {
		t.Fatal("mid-write kill did not fail the commit")
	}
	if stats == nil || stats.Stats().Kills != 1 {
		t.Fatalf("kill not injected: %+v", stats)
	}
	s.WrapWrites(nil)

	c, err := s.Latest()
	if err != nil || c == nil || c.Epoch != 1 {
		t.Fatalf("after torn commit: Latest = %+v, %v", c, err)
	}
	if err := s.Commit(faultCheckpoint(2)); err != nil {
		t.Fatalf("clean retry failed: %v", err)
	}
	c, err = s.Latest()
	if err != nil || c == nil || c.Epoch != 2 {
		t.Fatalf("after retry: Latest = %+v, %v", c, err)
	}
}
