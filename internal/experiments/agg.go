package experiments

import (
	"math"
	"math/rand"
	"sort"

	"streamdb/internal/agg"
	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/synopsis"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// E2BoundedMemoryAgg reproduces slide 36: grouping on an attribute with
// only a one-sided range predicate grows memory without bound, while a
// two-sided range keeps the group table finite. Measured as the group
// high-water mark while streaming.
func E2BoundedMemoryAgg(scale Scale) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "bounded vs unbounded memory aggregation (slide 36)",
		Header: []string{"query", "tuples", "maxGroups", "stateKB", "verdict"},
	}
	sch := stream.TrafficSchema("Traffic")
	n := scale.N(200000)

	run := func(lo, hi int64) (int, int) {
		length := expr.MustColumn(sch, "length")
		var pred expr.Expr
		pred, _ = expr.NewBin(expr.OpGt, length, expr.Constant(tuple.Int(lo)))
		if hi > 0 {
			upper, _ := expr.NewBin(expr.OpLt, length, expr.Constant(tuple.Int(hi)))
			pred, _ = expr.NewBin(expr.OpAnd, pred, upper)
		}
		cnt, _ := agg.Lookup("count", false)
		gb, err := agg.NewGroupBy("q", sch, []expr.Expr{length}, []string{"length"},
			[]agg.Spec{{Fn: cnt, Name: "cnt"}}, window.Tumbling(3600*stream.Second), nil)
		if err != nil {
			panic(err)
		}
		// Widen the length domain beyond real packet sizes to model an
		// unbounded attribute (as the slide assumes).
		rng := rand.New(rand.NewSource(2))
		emit := func(stream.Element) {}
		maxMem := 0
		for i := 0; i < n; i++ {
			ts := int64(i) * stream.Second / 1000
			length := tuple.Uint(uint64(513 + rng.Intn(1_000_000)))
			tp := tuple.New(ts, tuple.Time(ts), tuple.IP(1), tuple.IP(2), tuple.Uint(6), length)
			if expr.EvalBool(pred, tp) {
				gb.Push(0, stream.Tup(tp), emit)
			}
			// MemSize walks every live group; sample it.
			if i%1000 == 0 {
				if m := gb.MemSize(); m > maxMem {
					maxMem = m
				}
			}
		}
		return gb.MaxGroups(), maxMem
	}

	g1, m1 := run(512, 0)
	t.AddRow("group by length WHERE length > 512", n, g1, m1/1024, "unbounded")
	g2, m2 := run(512, 1024)
	t.AddRow("... AND length < 1024", n, g2, m2/1024, "bounded (<= 511 groups)")
	t.Notes = append(t.Notes,
		"expected shape: the one-sided query's group count grows with the stream; the two-sided query plateaus at the domain size")
	return t
}

// E8PartialAggregation reproduces slide 37's two-level aggregation:
// a bounded low-level group table absorbs the raw stream and ships
// partials; the high level holds the unbounded group set. Sweeps the
// low-level table size.
func E8PartialAggregation(scale Scale) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "two-level partial aggregation (slide 37)",
		Header: []string{"lowSlots", "rawTuples", "partials", "reduction", "evictions", "finalGroups", "lowStateKB"},
	}
	sch := stream.TrafficSchema("Traffic")
	n := scale.N(500000)
	groups := int64(20000)

	for _, slots := range []int{256, 1024, 4096, 16384} {
		cnt, _ := agg.Lookup("count", false)
		sum, _ := agg.Lookup("sum", false)
		srcIP := expr.MustColumn(sch, "srcIP")
		length := expr.MustColumn(sch, "length")
		pa, err := agg.NewPartialAgg("lfta", sch, []expr.Expr{srcIP}, []string{"srcIP"},
			[]agg.Spec{{Fn: cnt, Name: "cnt"}, {Fn: sum, Arg: length, Name: "bytes"}},
			slots, 60*stream.Second)
		if err != nil {
			panic(err)
		}
		fa, err := agg.NewFinalAgg("hfta", pa)
		if err != nil {
			panic(err)
		}
		finals := 0
		emitFinal := func(stream.Element) { finals++ }
		emitPartial := func(e stream.Element) { fa.Push(0, e, emitFinal) }

		rng := rand.New(rand.NewSource(8))
		zip := rand.NewZipf(rng, 1.1, 1, uint64(groups-1))
		for i := 0; i < n; i++ {
			ts := int64(i) * (10 * stream.Second) / int64(n) * 6 // spread over 1 minute
			ip := tuple.IP(uint32(zip.Uint64()))
			tp := tuple.New(ts, tuple.Time(ts), ip, tuple.IP(1), tuple.Uint(6),
				tuple.Uint(uint64(40+rng.Intn(1461))))
			pa.Push(0, stream.Tup(tp), emitPartial)
		}
		pa.Flush(emitPartial)
		fa.Flush(emitFinal)
		absorbed, emitted, evictions := pa.Stats()
		red := float64(absorbed) / float64(emitted)
		t.AddRow(slots, absorbed, emitted, red, evictions, finals, pa.MemSize()/1024)
	}
	t.Notes = append(t.Notes,
		"expected shape: larger low-level tables evict less and reduce more; low-level state stays fixed while final groups are unbounded")
	return t
}

// E9SynopsisAccuracy reproduces slides 38/53: approximate aggregates
// from synopses, error vs memory budget, on a Zipf value stream.
func E9SynopsisAccuracy(scale Scale) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "approximate aggregates: accuracy vs memory (slides 38, 53)",
		Header: []string{"budget", "gkMedianErr%", "sampleMedianErr%", "fmDistinctErr%", "cmHeavyHitErr%"},
	}
	n := scale.N(300000)
	rng := rand.New(rand.NewSource(9))
	zip := rand.NewZipf(rng, 1.1, 1, 1<<20)
	vals := make([]float64, n)
	freq := map[int64]uint64{}
	distinct := map[int64]bool{}
	for i := range vals {
		v := int64(zip.Uint64())
		vals[i] = float64(v)
		freq[v]++
		distinct[v] = true
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var topVal int64
	var topCount uint64
	for v, c := range freq {
		if c > topCount {
			topVal, topCount = v, c
		}
	}

	rank := func(x float64) int { return sort.SearchFloat64s(sorted, x) }

	for _, budget := range []int{1 << 10, 1 << 12, 1 << 14, 1 << 17} {
		// GK with eps sized to the budget (24 bytes/entry).
		eps := 1.0 / float64(budget/48)
		if eps < 1e-6 {
			eps = 1e-6
		}
		gk := synopsis.NewGK(eps)
		res := synopsis.NewReservoir(budget/16, 3)
		// FM needs several hits per bitmap to estimate well; cap the
		// bitmap count so small streams are not spread too thin.
		fmBits := budget / 8
		if fmBits > 512 {
			fmBits = 512
		}
		fm := synopsis.NewFM(fmBits)
		cm := synopsis.NewCountMinBytes(budget)
		for _, v := range vals {
			gk.Add(v)
			res.Add(tuple.Float(v))
			fm.Add(tuple.Float(v))
			cm.Add(tuple.Float(v), 1)
		}
		gkMed, _ := gk.Query(0.5)
		gkErr := math.Abs(float64(rank(gkMed))-float64(n)/2) / float64(n) * 100
		sMedV, _ := res.EstimateQuantile(0.5)
		sMed, _ := sMedV.AsFloat()
		sErr := math.Abs(float64(rank(sMed))-float64(n)/2) / float64(n) * 100
		fmErr := math.Abs(fm.Estimate()-float64(len(distinct))) / float64(len(distinct)) * 100
		cmEst := cm.Estimate(tuple.Float(float64(topVal)))
		cmErr := math.Abs(float64(cmEst)-float64(topCount)) / float64(topCount) * 100
		t.AddRow(budget, gkErr, sErr, fmErr, cmErr)
	}
	t.Notes = append(t.Notes,
		"expected shape: every estimator's error falls as memory grows; GK dominates sampling for quantiles at equal budget")
	return t
}

// E12WindowVariants reproduces slide 27: the three
// ordering-attribute window shapes on one stream — memory footprint
// and result cardinality differ by construction.
func E12WindowVariants(scale Scale) *Table {
	t := &Table{
		ID:     "E12",
		Title:  "window variants: sliding vs shifting vs agglomerative (slide 27)",
		Header: []string{"window", "results", "maxGroups", "peakStateKB"},
	}
	sch := stream.MeasurementSchema("M")
	n := scale.N(100000)
	variants := []struct {
		name string
		spec window.Spec
	}{
		{"shifting [range 10s]", window.Tumbling(10 * stream.Second)},
		{"sliding [range 10s slide 2s]", window.Time(10*stream.Second, 2*stream.Second)},
		{"agglomerative [slide 10s]", window.Landmark(10 * stream.Second)},
	}
	for _, v := range variants {
		cnt, _ := agg.Lookup("count", false)
		avgF, _ := agg.Lookup("avg", false)
		sensor := expr.MustColumn(sch, "sensor")
		value := expr.MustColumn(sch, "value")
		gb, err := agg.NewGroupBy("w", sch, []expr.Expr{sensor}, []string{"sensor"},
			[]agg.Spec{{Fn: cnt, Name: "cnt"}, {Fn: avgF, Arg: value, Name: "mean"}},
			v.spec, nil)
		if err != nil {
			panic(err)
		}
		// Rate chosen so the stream spans ~60s of virtual time at any
		// scale: enough window closures to expose the cardinality gap.
		src := stream.NewMeasurementStream(12, 16, float64(n)/60)
		results := 0
		peak := 0
		emit := func(stream.Element) { results++ }
		for i := 0; i < n; i++ {
			e, _ := src.Next()
			gb.Push(0, e, emit)
			if i%500 == 0 {
				if m := gb.MemSize(); m > peak {
					peak = m
				}
			}
		}
		gb.Flush(emit)
		t.AddRow(v.name, results, gb.MaxGroups(), peak/1024)
	}
	t.Notes = append(t.Notes,
		"expected shape: sliding emits range/slide times more results than shifting; agglomerative accumulates a single ever-growing window")
	return t
}
