package exec

// Tests for the adaptive controller: policy unit tests against a
// synthetic pressure signal (batch decay, slope-weighted growth,
// sustained-idle shrink, shed escalation and decay, rate-model
// seeding), plus end-to-end equivalence — below capacity an adaptive
// run must stay byte-identical to the serial engine across every lane,
// including live key-partition re-splits forced mid-stream.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamdb/internal/ops"
	"streamdb/internal/shed"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// costOp is a replicable pass-through declaring rate-model costs.
type costOp struct {
	name     string
	sch      *tuple.Schema
	sel, uc  float64
	pushed   int64
	everyN   int
	napEvery time.Duration
}

func (c *costOp) Name() string             { return c.name }
func (c *costOp) OutSchema() *tuple.Schema { return c.sch }
func (c *costOp) NumInputs() int           { return 1 }
func (c *costOp) MemSize() int             { return 0 }
func (c *costOp) Flush(ops.Emit)           {}
func (c *costOp) Selectivity() float64     { return c.sel }
func (c *costOp) UnitCost() float64        { return c.uc }
func (c *costOp) Push(_ int, e stream.Element, emit ops.Emit) {
	if !e.IsPunct() {
		c.pushed++
		if c.everyN > 0 && c.pushed%int64(c.everyN) == 0 {
			time.Sleep(c.napEvery)
		}
	}
	emit(e)
}

// paceOp is a non-replicable pass-through that sleeps periodically so
// the controller gets ticks while data is still flowing. Deterministic:
// identical output in serial and adaptive runs.
type paceOp struct {
	name  string
	sch   *tuple.Schema
	seen  int64
	every int64
	nap   time.Duration
}

func (p *paceOp) Name() string             { return p.name }
func (p *paceOp) OutSchema() *tuple.Schema { return p.sch }
func (p *paceOp) NumInputs() int           { return 1 }
func (p *paceOp) MemSize() int             { return 0 }
func (p *paceOp) Flush(ops.Emit)           {}
func (p *paceOp) Push(_ int, e stream.Element, emit ops.Emit) {
	if !e.IsPunct() {
		p.seen++
		if p.seen%p.every == 0 {
			time.Sleep(p.nap)
		}
	}
	emit(e)
}

// adaptHarness builds a controller over a graph without running it.
func adaptHarness(t *testing.T, g *Graph, opts RunOptions, maxP int) (*concRun, *adaptState) {
	t.Helper()
	if opts.Adapt == nil {
		opts.Adapt = &AdaptConfig{}
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 64
	}
	if opts.ChanCap <= 0 {
		opts.ChanCap = 4
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = 1
	}
	r := &concRun{g: g, opts: opts, pending: make([]int64, len(g.nodes))}
	a := newAdaptState(g, opts, maxP)
	r.adapt = a
	return r, a
}

func TestAdaptControllerPolicy(t *testing.T) {
	g := NewGraph(nil)
	src := g.AddSource(stream.FromElements(sch))
	sel := g.AddOp(mustSelect(t, -1))
	dropper, err := shed.NewRandom("drop", sch, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sh := g.AddOp(dropper)
	if err := g.ConnectSource(src, sel, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(sel, sh, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(sh); err != nil {
		t.Fatal(err)
	}
	var decisions []AdaptDecision
	opts := RunOptions{BatchSize: 64, ChanCap: 4, Parallelism: 1,
		Adapt: &AdaptConfig{OnDecision: func(d AdaptDecision) { decisions = append(decisions, d) }}}
	r, a := adaptHarness(t, g, opts, 3)
	a.kind[sel] = laneRepl
	if len(a.shed) != 1 || a.shed[0] != int(sh) {
		t.Fatalf("shedder discovery: %v, want [%d]", a.shed, sh)
	}

	// Idle queues: batch targets decay to MinBatch, no width change.
	for i := 0; i < 6; i++ {
		a.tick(r)
	}
	if tgt := atomic.LoadInt64(&a.batchTgt[len(g.nodes)]); tgt != int64(a.cfg.MinBatch) {
		t.Errorf("idle source batch target = %d, want MinBatch %d", tgt, a.cfg.MinBatch)
	}
	if w := atomic.LoadInt32(&a.actP[sel]); w != 1 {
		t.Errorf("idle width = %d, want 1", w)
	}

	// Pressure on the replicable stage: grow one step per tick to the
	// ceiling, and batch targets snap back to full.
	capEls := int64(r.opts.ChanCap * r.opts.BatchSize)
	for i := 0; i < 2; i++ {
		atomic.StoreInt64(&r.pending[sel], capEls*3/4)
		a.tick(r)
	}
	if w := atomic.LoadInt32(&a.actP[sel]); w != 3 {
		t.Errorf("width after 2 pressured ticks = %d, want 3 (one step per tick)", w)
	}
	if tgt := atomic.LoadInt64(&a.batchTgt[len(g.nodes)]); tgt != int64(r.opts.BatchSize) {
		t.Errorf("pressured source batch target = %d, want %d", tgt, r.opts.BatchSize)
	}

	// Still pressured with replication exhausted: shedding engages.
	atomic.StoreInt64(&r.pending[sel], capEls*3/4)
	a.tick(r)
	if a.shedRate <= 0 {
		t.Fatalf("shed rate = %v after pressure at ceiling, want > 0", a.shedRate)
	}
	if got := dropper.Rate(); got != a.shedRate {
		t.Errorf("shedder rate = %v, want %v (applyShed must reach the live op)", got, a.shedRate)
	}
	if g.nodes[sh].stats.ShedRate != a.shedRate {
		t.Errorf("stats.ShedRate = %v, want %v", g.nodes[sh].stats.ShedRate, a.shedRate)
	}

	// Pressure clears: the rate decays all the way off and the width
	// shrinks after sustained idleness.
	atomic.StoreInt64(&r.pending[sel], 0)
	for i := 0; i < 40; i++ {
		a.tick(r)
	}
	if a.shedRate != 0 {
		t.Errorf("shed rate = %v after idle decay, want 0", a.shedRate)
	}
	if dropper.Rate() != 0 {
		t.Errorf("shedder rate = %v after idle decay, want 0", dropper.Rate())
	}
	if w := atomic.LoadInt32(&a.actP[sel]); w != 1 {
		t.Errorf("width after sustained idleness = %d, want 1", w)
	}
	var acts []string
	for _, d := range decisions {
		acts = append(acts, d.Action)
	}
	for _, want := range []string{"batch", "grow", "shed", "shrink"} {
		found := false
		for _, a := range acts {
			if a == want {
				found = true
			}
		}
		if !found {
			t.Errorf("no %q decision observed (got %v)", want, acts)
		}
	}
}

func TestAdaptSeedFromRateModel(t *testing.T) {
	g := NewGraph(nil)
	src := g.AddSource(stream.FromElements(sch))
	heavy := &costOp{name: "heavy", sch: sch, sel: 1, uc: 3}
	hv := g.AddOp(heavy)
	if err := g.ConnectSource(src, hv, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(hv); err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{BatchSize: 64, ChanCap: 4, Parallelism: 1,
		Adapt: &AdaptConfig{ExpectedRate: 1000}}
	_, a := adaptHarness(t, g, opts, 8)
	a.kind[hv] = laneRepl
	a.seed(g)
	// UnitCost 3 at the expected rate: per-replica capacity er/3, so the
	// stage needs ceil(er / (er/3)) = 3 replicas from the start.
	if w := atomic.LoadInt32(&a.actP[hv]); w != 3 {
		t.Errorf("seeded width = %d, want 3", w)
	}
	if a.shedRate != 0 {
		t.Errorf("seeded shed rate = %v, want 0 (demand within pool)", a.shedRate)
	}

	// Demand beyond the pool ceiling pre-warms the shed rate.
	_, a2 := adaptHarness(t, g, opts, 2)
	a2.kind[hv] = laneRepl
	a2.seed(g)
	if w := atomic.LoadInt32(&a2.actP[hv]); w != 2 {
		t.Errorf("clamped seeded width = %d, want 2", w)
	}
	if a2.shedRate <= 0 {
		t.Errorf("seeded shed rate = %v, want > 0 (chain demand 3 > pool 2)", a2.shedRate)
	}
}

// adStream is pjStream without stragglers: per-key-monotone timestamps,
// so a live re-split preserves byte order, not just the multiset.
func adStream(n int, port int64, keys int64, seed int64) []stream.Element {
	rng := rand.New(rand.NewSource(seed))
	var elems []stream.Element
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += 2 * (1 + rng.Int63n(3))
		elems = append(elems, stream.Tup(tuple.New(ts+port,
			tuple.Time(ts+port), tuple.Int(rng.Int63n(keys)), tuple.Int(int64(i)))))
		if i%61 == 60 && ts > 40 {
			p := ts + port - 40
			elems = append(elems, stream.Punct(stream.ProgressPunct(p, 0, tuple.Time(p))))
		}
	}
	return elems
}

// runAdaptJoin drives (source 0 -> pace, source 1 -> pace) -> join ->
// sink; opts == nil uses the serial deterministic Run. The pace stages
// stretch the run so the controller observes it mid-flight.
func runAdaptJoin(t *testing.T, j ops.Operator, left, right []stream.Element, opts *RunOptions) (NodeStats, []string) {
	t.Helper()
	var mu sync.Mutex
	var got []string
	g := NewGraph(func(e stream.Element) {
		mu.Lock()
		defer mu.Unlock()
		if e.IsPunct() {
			got = append(got, fmt.Sprintf("punct@%d", e.Punct.Ts))
			return
		}
		got = append(got, fmt.Sprintf("%d|%s", e.Tuple.Ts, e.Tuple.String()))
	})
	sl := g.AddSource(stream.FromElements(pjLeft, left...))
	sr := g.AddSource(stream.FromElements(pjRight, right...))
	pl := g.AddOp(&paceOp{name: "paceL", sch: pjLeft, every: 64, nap: 200 * time.Microsecond})
	pr := g.AddOp(&paceOp{name: "paceR", sch: pjRight, every: 64, nap: 200 * time.Microsecond})
	n := g.AddOp(j)
	if err := g.ConnectSource(sl, pl, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectSource(sr, pr, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(pl, n, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(pr, n, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(n); err != nil {
		t.Fatal(err)
	}
	if opts == nil {
		g.Run(-1)
	} else {
		g.RunWith(-1, *opts)
	}
	return g.Stats(n), got
}

// TestAdaptiveRescaleByteIdentity forces the controller through a cycle
// of key-partition widths while a window join runs, and requires the
// output to stay byte-identical to the serial engine — the state
// handoff (quiesce, snapshot, RestorePartition) must be invisible. Both
// the row and the columnar router are exercised.
func TestAdaptiveRescaleByteIdentity(t *testing.T) {
	left := adStream(1500, 0, 6, 42)
	right := adStream(1500, 1, 6, 99)
	_, base := runAdaptJoin(t, pjJoin(t, ops.JoinHash, ops.JoinHash, false), left, right, nil)
	if len(base) == 0 {
		t.Fatal("serial baseline produced nothing")
	}
	widths := []int{3, 1, 4, 2}
	for _, columnar := range []bool{false, true} {
		adapt := &AdaptConfig{
			Interval:       100 * time.Microsecond,
			MaxParallelism: 4,
			testWant: func(id NodeID, tick int) int {
				return widths[(tick/3)%len(widths)]
			},
		}
		opts := &RunOptions{BatchSize: 7, Parallelism: 2, ForceParallelism: true,
			PartitionJoins: true, Columnar: columnar, Adapt: adapt}
		st, got := runAdaptJoin(t, pjJoin(t, ops.JoinHash, ops.JoinHash, false), left, right, opts)
		sameSeq(t, fmt.Sprintf("adaptive columnar=%v", columnar), got, base)
		if st.Rescales == 0 {
			t.Errorf("columnar=%v: Rescales = 0, want at least one live re-split", columnar)
		}
		if st.Replicas < 1 || st.Replicas > 4 {
			t.Errorf("columnar=%v: Replicas = %d, want within [1,4]", columnar, st.Replicas)
		}
	}
}

// TestAdaptiveRescaleStragglers covers re-splits over out-of-order
// inputs: per-key timestamps are no longer monotone, so the contract
// weakens to multiset equality (rescale.go's documented bound).
func TestAdaptiveRescaleStragglers(t *testing.T) {
	left := pjStream(1200, 0, 5, 3)
	right := pjStream(1200, 1, 5, 4)
	count := func(out []string) map[string]int {
		m := map[string]int{}
		for _, s := range out {
			if len(s) < 5 || s[:5] != "punct" {
				m[s]++
			}
		}
		return m
	}
	_, baseSeq := runAdaptJoin(t, pjJoin(t, ops.JoinHash, ops.JoinHash, false), left, right, nil)
	base := count(baseSeq)
	if len(base) == 0 {
		t.Fatal("serial baseline produced nothing")
	}
	adapt := &AdaptConfig{
		Interval:       100 * time.Microsecond,
		MaxParallelism: 4,
		testWant: func(id NodeID, tick int) int {
			return []int{4, 2, 3, 1}[(tick/3)%4]
		},
	}
	opts := &RunOptions{BatchSize: 7, Parallelism: 2, ForceParallelism: true,
		PartitionJoins: true, Adapt: adapt}
	st, gotSeq := runAdaptJoin(t, pjJoin(t, ops.JoinHash, ops.JoinHash, false), left, right, opts)
	got := count(gotSeq)
	if st.Rescales == 0 {
		t.Error("Rescales = 0, want at least one live re-split")
	}
	if len(got) != len(base) {
		t.Fatalf("adaptive: %d distinct rows, want %d", len(got), len(base))
	}
	for k, v := range base {
		if got[k] != v {
			t.Errorf("row %q: count %d, want %d", k, got[k], v)
		}
	}
}

// TestAdaptiveMatchesSerialAllLanes: with the controller live (real
// policy, tiny interval — no forced widths) every lane family must stay
// byte-identical to the serial run below capacity.
func TestAdaptiveMatchesSerialAllLanes(t *testing.T) {
	adapt := func() *AdaptConfig {
		return &AdaptConfig{Interval: 100 * time.Microsecond, MaxParallelism: 4}
	}

	// Stateless replication lane (Select -> Project).
	var elems []stream.Element
	for i := int64(0); i < 2000; i++ {
		elems = append(elems, el(i, i%40))
		if i%100 == 99 {
			elems = append(elems, stream.Punct(stream.ProgressPunct(i, 0, tuple.Time(i))))
		}
	}
	base := pipelineOutputs(t, elems, RunOptions{BatchSize: 1})
	got := pipelineOutputs(t, elems, RunOptions{BatchSize: 64, Parallelism: 2,
		ForceParallelism: true, Adapt: adapt()})
	sameSeq(t, "stateless lane", got, base)

	// Partial-aggregation lane (GroupBy behind the combiner merge).
	panes := paneStream(3000, false)
	_, aggBase := runPaneGraph(t, paneGroupBy(t, window.Time(80, 20), []string{"sum", "count"}, true), panes, nil)
	if len(aggBase) == 0 {
		t.Fatal("aggregation baseline produced nothing")
	}
	_, aggGot := runPaneGraph(t, paneGroupBy(t, window.Time(80, 20), []string{"sum", "count"}, true), panes,
		&RunOptions{BatchSize: 64, Parallelism: 2, ForceParallelism: true, Adapt: adapt()})
	sameSeq(t, "partial-agg lane", aggGot, aggBase)

	// Key-partitioned lane, live policy.
	left := pjStream(1000, 0, 6, 7)
	right := pjStream(1000, 1, 6, 8)
	_, jBase := runPartJoin(t, pjJoin(t, ops.JoinHash, ops.JoinHash, true), left, right, nil)
	_, jGot := runPartJoin(t, pjJoin(t, ops.JoinHash, ops.JoinHash, true), left, right,
		&RunOptions{BatchSize: 32, Parallelism: 2, ForceParallelism: true,
			PartitionJoins: true, Adapt: adapt()})
	sameSeq(t, "key-partition lane", jGot, jBase)
}

// TestAdaptiveShedsUnderOverload drives a graph past the capacity of
// its one-replica ceiling and checks the escalation endpoint: the
// controller raises the in-graph shedder's rate while the run is live,
// and the sink sees fewer tuples than entered.
func TestAdaptiveShedsUnderOverload(t *testing.T) {
	const n = 4000
	var elems []stream.Element
	for i := int64(0); i < n; i++ {
		elems = append(elems, el(i, i%40))
	}
	var out int64
	g := NewGraph(func(e stream.Element) {
		if !e.IsPunct() {
			atomic.AddInt64(&out, 1)
		}
	})
	src := g.AddSource(stream.FromElements(sch, elems...))
	dropper, err := shed.NewRandom("drop", sch, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	sh := g.AddOp(dropper)
	slow := &costOp{name: "slow", sch: sch, sel: 1, uc: 1, everyN: 16, napEvery: 100 * time.Microsecond}
	sl := g.AddOp(slow)
	if err := g.ConnectSource(src, sh, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(sh, sl, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(sl); err != nil {
		t.Fatal(err)
	}
	var shedSeen atomic.Bool
	g.RunWith(-1, RunOptions{BatchSize: 16, ChanCap: 2, Parallelism: 1, ForceParallelism: true,
		Adapt: &AdaptConfig{
			Interval:       100 * time.Microsecond,
			MaxParallelism: 1, // replication exhausted from the start
			OnDecision: func(d AdaptDecision) {
				if d.Action == "shed" && d.ShedRate > 0 {
					shedSeen.Store(true)
				}
			},
		}})
	if !shedSeen.Load() {
		t.Fatal("controller never raised the shed rate under sustained overload")
	}
	if dropped := dropper.Dropped(); dropped == 0 {
		t.Error("shedder dropped nothing despite a raised rate")
	}
	if out == n {
		t.Error("sink saw every tuple; shedding had no effect")
	}
}

// TestAllStatsJSON: the -stats surface must serialize cleanly with
// names attached.
func TestAllStatsJSON(t *testing.T) {
	var elems []stream.Element
	for i := int64(0); i < 100; i++ {
		elems = append(elems, el(i, i))
	}
	got := pipelineOutputs(t, elems, RunOptions{BatchSize: 8, Parallelism: 2,
		ForceParallelism: true, Adapt: &AdaptConfig{Interval: time.Millisecond}})
	if len(got) == 0 {
		t.Fatal("pipeline produced nothing")
	}
}

func TestAllStatsNames(t *testing.T) {
	g := NewGraph(nil)
	src := g.AddSource(stream.FromElements(sch))
	sel := g.AddOp(mustSelect(t, -1))
	if err := g.ConnectSource(src, sel, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(sel); err != nil {
		t.Fatal(err)
	}
	all := g.AllStats()
	if len(all) != 1 || all[0].Op == "" || all[0].Node != sel {
		t.Fatalf("AllStats = %+v, want one named entry for node %d", all, sel)
	}
	if _, err := json.Marshal(all); err != nil {
		t.Fatalf("AllStats must be JSON-serializable: %v", err)
	}
}
