package streamdb

// Benchmarks regenerating every figure/table/worked example of the
// tutorial (the E1-E16 index in DESIGN.md §3). Each benchmark runs its
// experiment at a scale proportional to b.N and reports the headline
// metric of the corresponding slide via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// produces the paper-shaped numbers alongside throughput. Use
// cmd/experiments to print the full tables.

import (
	"strconv"
	"strings"
	"testing"

	"streamdb/internal/experiments"
	"streamdb/internal/query"
	"streamdb/internal/stream"
)

// benchScale maps b.N (iterations of the whole experiment) to a
// fixed modest scale: experiments are macro-benchmarks, so each
// iteration runs the whole workload.
const benchScale = experiments.Scale(0.1)

func parseMetric(tb *experiments.Table, row, col int) float64 {
	s := strings.TrimSuffix(tb.Rows[row][col], "x")
	f, _ := strconv.ParseFloat(s, 64)
	return f
}

func BenchmarkE1WindowJoinRegimes(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E1WindowJoinRegimes(benchScale)
	}
	b.ReportMetric(parseMetric(tb, 0, 2), "hashOut_cpuLimited")
	b.ReportMetric(parseMetric(tb, 3, 2), "inlOut_memLimited")
}

func BenchmarkE2BoundedMemoryAgg(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E2BoundedMemoryAgg(benchScale)
	}
	b.ReportMetric(parseMetric(tb, 0, 2), "unboundedGroups")
	b.ReportMetric(parseMetric(tb, 1, 2), "boundedGroups")
}

func BenchmarkE3RateBasedPlans(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E3RateBasedPlans(benchScale)
	}
	b.ReportMetric(parseMetric(tb, 0, 2), "bestPlan_tps")
	b.ReportMetric(parseMetric(tb, 1, 2), "worstPlan_tps")
}

func BenchmarkE4SchedulingBacklog(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E4SchedulingBacklog(benchScale)
	}
	b.ReportMetric(parseMetric(tb, 2, 2), "fifoPeak")
	b.ReportMetric(parseMetric(tb, 4, 2), "greedyPeak")
	b.ReportMetric(parseMetric(tb, 5, 2), "chainPeak")
}

func BenchmarkE5LoadShedding(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E5LoadShedding(benchScale)
	}
	last := len(tb.Rows) - 2
	b.ReportMetric(parseMetric(tb, last, 3), "randomRecall_70drop")
	b.ReportMetric(parseMetric(tb, last+1, 3), "semanticRecall_70drop")
}

func BenchmarkE6P2PDetection(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E6P2PDetection(benchScale)
	}
	b.ReportMetric(parseMetric(tb, 2, 3), "payloadVsPort_x")
}

func BenchmarkE7RTTMonitoring(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E7RTTMonitoring(benchScale)
	}
	b.ReportMetric(parseMetric(tb, len(tb.Rows)-1, 3), "recall_30sWindow")
}

func BenchmarkE8PartialAggregation(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E8PartialAggregation(benchScale)
	}
	b.ReportMetric(parseMetric(tb, len(tb.Rows)-1, 3), "reduction_16kSlots")
}

func BenchmarkE9SynopsisAccuracy(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E9SynopsisAccuracy(benchScale)
	}
	b.ReportMetric(parseMetric(tb, len(tb.Rows)-1, 1), "gkMedianErrPct")
}

func BenchmarkE10SystemProfiles(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E10SystemProfiles(benchScale)
	}
	b.ReportMetric(parseMetric(tb, 0, 3), "auroraDroppedPct")
}

func BenchmarkE11XJoinSpill(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E11XJoinSpill(benchScale, b.TempDir())
	}
	b.ReportMetric(parseMetric(tb, 0, 4), "spilledTuples_smallBudget")
}

func BenchmarkE12WindowVariants(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E12WindowVariants(benchScale)
	}
	b.ReportMetric(parseMetric(tb, 1, 1)/parseMetric(tb, 0, 1), "slidingVsShifting_x")
}

func BenchmarkE13BlockIO(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E13BlockIO(benchScale, b.TempDir(), b.TempDir())
	}
	b.ReportMetric(parseMetric(tb, 1, 3), "randomSeeks")
	b.ReportMetric(parseMetric(tb, 0, 3), "mergeSeeks")
}

func BenchmarkE13FraudDetection(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E13FraudDetection(benchScale, b.TempDir())
	}
	b.ReportMetric(parseMetric(tb, len(tb.Rows)-1, 4), "day4Recall")
}

func BenchmarkE14MultiQuerySharing(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E14MultiQuerySharing(benchScale)
	}
	b.ReportMetric(parseMetric(tb, 4, 4), "selectSharing64q_x")
}

func BenchmarkE15DistributedFilters(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E15DistributedFilters(benchScale)
	}
	b.ReportMetric(parseMetric(tb, len(tb.Rows)-1, 3), "msgSaving_loose_x")
}

func BenchmarkE16EddyAdaptivity(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E16EddyAdaptivity(benchScale)
	}
	b.ReportMetric(parseMetric(tb, 2, 2), "eddyEvalsPerTuple_phase2")
	b.ReportMetric(parseMetric(tb, 3, 2), "fixedEvalsPerTuple_phase2")
}

func BenchmarkE17FaultTolerance(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E17FaultTolerance(benchScale)
	}
	// Recovery latency at the 5% drop-rate, batched-wire row (ms);
	// exactness is asserted by the chaos tests. Rows are (dropRate,
	// wirebatch) pairs, so 5%/wirebatch=16 is third from the end.
	row := len(tb.Rows) - 3
	s := strings.TrimSuffix(tb.Rows[row][6], "ms")
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		b.ReportMetric(f, "recovery_ms_at_5pct")
	}
	b.ReportMetric(parseMetric(tb, row, 3), "reconnects_at_5pct")
}

func BenchmarkE21TransportWire(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E21TransportWire(benchScale)
	}
	// Rows: v2/1, v3/1, v3/16, v3/64, v3/256.
	b.ReportMetric(parseMetric(tb, 0, 4), "v2_ktuples_s")
	b.ReportMetric(parseMetric(tb, 3, 4), "v3b64_ktuples_s")
	b.ReportMetric(parseMetric(tb, 0, 3), "v2_bytes_per_tuple")
	b.ReportMetric(parseMetric(tb, 3, 3), "v3b64_bytes_per_tuple")
}

func BenchmarkE22CrashRecovery(b *testing.B) {
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		tb = experiments.E22CrashRecovery(benchScale, b.TempDir())
	}
	// Final row is the recovered run: exactness is asserted by
	// TestE22Shape; report the replay cost the checkpoints bound.
	last := len(tb.Rows) - 1
	b.ReportMetric(parseMetric(tb, last, 4), "dupes_suppressed")
	b.ReportMetric(parseMetric(tb, last, 3), "epochs_committed")
}

// Micro-benchmarks for the engine's hot paths.

func BenchmarkQueryFilterThroughput(b *testing.B) {
	cat := query.NewCatalog()
	sch := stream.TrafficSchema("Traffic")
	cat.Register("Traffic", sch)
	q, err := query.Parse("select srcIP, length from Traffic where protocol = 6 and length > 512")
	if err != nil {
		b.Fatal(err)
	}
	plan, err := query.Compile(q, cat)
	if err != nil {
		b.Fatal(err)
	}
	_ = plan
	b.ResetTimer()
	b.ReportAllocs()
	rows, _, err := query.Run(q.Text, cat, map[string]stream.Source{
		"Traffic": stream.Limit(stream.NewTrafficStream(1, 1e6, 1000), b.N),
	}, -1)
	if err != nil {
		b.Fatal(err)
	}
	if b.N > 100 && len(rows) == 0 {
		b.Fatal("no output")
	}
}

func BenchmarkQueryWindowAggThroughput(b *testing.B) {
	cat := query.NewCatalog()
	cat.Register("Traffic", stream.TrafficSchema("Traffic"))
	b.ResetTimer()
	b.ReportAllocs()
	_, _, err := query.Run(
		"select srcIP, count(*) as c, sum(length) as bytes from Traffic [range 1] group by srcIP",
		cat, map[string]stream.Source{
			"Traffic": stream.Limit(stream.NewTrafficStream(2, 1e6, 1000), b.N),
		}, -1)
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkParseCompile(b *testing.B) {
	cat := query.NewCatalog()
	cat.Register("Traffic", stream.TrafficSchema("Traffic"))
	const sql = `select tb, srcIP, sum(length) from Traffic [range 60]
		where protocol = 6 group by time/60 as tb, srcIP having count(*) > 5`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, err := query.Parse(sql)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := query.Compile(q, cat); err != nil {
			b.Fatal(err)
		}
	}
}
