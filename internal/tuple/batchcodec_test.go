package tuple

import (
	"bytes"
	"encoding/binary"
	"testing"
)

var batchSchema = NewSchema("S",
	Field{Name: "time", Kind: KindTime, Ordering: true},
	Field{Name: "src", Kind: KindIP},
	Field{Name: "proto", Kind: KindUint},
	Field{Name: "len", Kind: KindUint},
	Field{Name: "host", Kind: KindString},
	Field{Name: "score", Kind: KindFloat},
)

func batchTuples(n int) []*Tuple {
	out := make([]*Tuple, n)
	for i := range out {
		ts := int64(1000 + 10*i)
		host := String("example.com")
		if i%3 == 0 {
			host = Null
		}
		score := Float(float64(i) * 0.5)
		if i%5 == 0 {
			score = Null
		}
		out[i] = New(ts, Time(ts), IP(uint32(0x0a000000+i)), Uint(uint64(6)),
			Uint(uint64(40+i%1400)), host, score)
	}
	return out
}

func tuplesEqual(t *testing.T, got, want []*Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d tuples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Ts != want[i].Ts {
			t.Fatalf("tuple %d: ts %d, want %d", i, got[i].Ts, want[i].Ts)
		}
		if len(got[i].Vals) != len(want[i].Vals) {
			t.Fatalf("tuple %d: arity %d, want %d", i, len(got[i].Vals), len(want[i].Vals))
		}
		for j := range got[i].Vals {
			g, w := got[i].Vals[j], want[i].Vals[j]
			if g.Kind != w.Kind || (g.Kind != KindNull && !g.Equal(w)) {
				t.Fatalf("tuple %d field %d: %v, want %v", i, j, g, w)
			}
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	want := batchTuples(100)
	buf, err := AppendEncodeBatch(nil, batchSchema, want)
	if err != nil {
		t.Fatal(err)
	}
	var a Arena
	got, n, err := DecodeBatchInto(buf, batchSchema, &a)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	tuplesEqual(t, got, want)
}

func TestBatchEmptyAndSingle(t *testing.T) {
	buf, err := AppendEncodeBatch(nil, batchSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a Arena
	got, _, err := DecodeBatchInto(buf, batchSchema, &a)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %d tuples, err %v", len(got), err)
	}
	one := batchTuples(1)
	buf, err = AppendEncodeBatch(buf[:0], batchSchema, one)
	if err != nil {
		t.Fatal(err)
	}
	a.Reset()
	got, _, err = DecodeBatchInto(buf, batchSchema, &a)
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, one)
}

func TestBatchNegativeDeltas(t *testing.T) {
	// Late tuples: timestamps going backwards must survive the delta
	// encoding.
	s := NewSchema("T", Field{Name: "v", Kind: KindInt})
	want := []*Tuple{
		New(100, Int(1)), New(50, Int(2)), New(-7, Int(3)), New(200, Int(4)),
	}
	buf, err := AppendEncodeBatch(nil, s, want)
	if err != nil {
		t.Fatal(err)
	}
	var a Arena
	got, _, err := DecodeBatchInto(buf, s, &a)
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, want)
}

func TestBatchSmallerThanPerTupleEncoding(t *testing.T) {
	// The headline claim: schema coding + delta timestamps beat the
	// self-describing per-tuple encoding on a netmon-style schema.
	s := NewSchema("Traffic",
		Field{Name: "time", Kind: KindTime, Ordering: true},
		Field{Name: "srcIP", Kind: KindIP},
		Field{Name: "destIP", Kind: KindIP},
		Field{Name: "protocol", Kind: KindUint},
		Field{Name: "length", Kind: KindUint},
	)
	tuples := make([]*Tuple, 64)
	for i := range tuples {
		ts := int64(1e9 + 10000*i)
		tuples[i] = New(ts, Time(ts), IP(uint32(0x0a010000+i)), IP(uint32(0x0a020000+i)),
			Uint(6), Uint(uint64(40+i)))
	}
	var v1 []byte
	for _, tp := range tuples {
		v1 = AppendEncode(v1, tp)
	}
	v3, err := AppendEncodeBatch(nil, s, tuples)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(v3)) > 0.7*float64(len(v1)) {
		t.Errorf("batch encoding %d bytes vs per-tuple %d: less than 30%% saving", len(v3), len(v1))
	}
}

func TestBatchEncodeRejectsSchemaViolations(t *testing.T) {
	s := NewSchema("T", Field{Name: "v", Kind: KindInt})
	if _, err := AppendEncodeBatch(nil, s, []*Tuple{New(1, Int(1), Int(2))}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := AppendEncodeBatch(nil, s, []*Tuple{New(1, String("x"))}); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestBatchDecodeTruncationAndCorruption(t *testing.T) {
	want := batchTuples(8)
	buf, err := AppendEncodeBatch(nil, batchSchema, want)
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail or decode fewer bytes, never panic
	// or over-read.
	for cut := 0; cut < len(buf); cut++ {
		var a Arena
		got, n, err := DecodeBatchInto(buf[:cut], batchSchema, &a)
		if err == nil {
			if n > cut {
				t.Fatalf("cut %d: consumed %d bytes beyond buffer", cut, n)
			}
			_ = got
		} else if len(a.ptrs) != 0 || len(a.vals) != 0 {
			t.Fatalf("cut %d: arena not rolled back on error", cut)
		}
	}
	// A batch count claiming more tuples than bytes is rejected before
	// sizing the arena.
	huge := binary.AppendUvarint(nil, 1<<40)
	if _, _, err := DecodeBatchInto(huge, batchSchema, &Arena{}); err == nil {
		t.Error("huge batch count accepted")
	}
	// A huge string length varint must not wrap the bounds check.
	s := NewSchema("T", Field{Name: "s", Kind: KindString})
	crafted := binary.AppendUvarint(nil, 1)          // count
	crafted = binary.AppendVarint(crafted, 0)        // ts delta
	crafted = append(crafted, 0)                     // bitmap: not null
	crafted = binary.AppendUvarint(crafted, 1<<62)   // absurd string length
	crafted = append(crafted, 'x')
	if _, _, err := DecodeBatchInto(crafted, s, &Arena{}); err == nil {
		t.Error("wrapping string length accepted in batch decode")
	}
}

func TestDecodeStringLengthOverflow(t *testing.T) {
	// Regression for the v1 Decode string path: off+n+int(ln) wrapped
	// negative on a huge ln varint, slipping past the bounds check and
	// panicking on the slice expression.
	buf := binary.AppendVarint(nil, 1)            // ts
	buf = binary.AppendUvarint(buf, 1)            // nvals
	buf = append(buf, byte(KindString))           // kind
	buf = binary.AppendUvarint(buf, 1<<63)        // ln: int64-wrapping length
	buf = append(buf, 'x')
	if _, _, err := Decode(buf); err == nil {
		t.Error("wrapping string length accepted")
	}
}

func TestArenaReuseAndPool(t *testing.T) {
	want := batchTuples(32)
	buf, err := AppendEncodeBatch(nil, batchSchema, want)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewArenaPool()
	for iter := 0; iter < 10; iter++ {
		a := pool.Get()
		got, _, err := DecodeBatchInto(buf, batchSchema, a)
		if err != nil {
			t.Fatal(err)
		}
		tuplesEqual(t, got, want)
		// Appending a second batch must keep the first batch's tuples
		// intact (growth copies, old pointers stay valid).
		got2, _, err := DecodeBatchInto(buf, batchSchema, a)
		if err != nil {
			t.Fatal(err)
		}
		tuplesEqual(t, got, want)
		tuplesEqual(t, got2, want)
		pool.Put(a)
	}
}

func TestBatchDecodeSteadyStateAllocFree(t *testing.T) {
	// String-free schema: after warm-up, decode into a reused arena must
	// not allocate.
	s := NewSchema("Traffic",
		Field{Name: "time", Kind: KindTime, Ordering: true},
		Field{Name: "srcIP", Kind: KindIP},
		Field{Name: "length", Kind: KindUint},
	)
	tuples := make([]*Tuple, 64)
	for i := range tuples {
		ts := int64(1000 * i)
		tuples[i] = New(ts, Time(ts), IP(uint32(i)), Uint(uint64(i)))
	}
	buf, err := AppendEncodeBatch(nil, s, tuples)
	if err != nil {
		t.Fatal(err)
	}
	var a Arena
	if _, _, err := DecodeBatchInto(buf, s, &a); err != nil { // warm up capacity
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		a.Reset()
		if _, _, err := DecodeBatchInto(buf, s, &a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state batch decode allocates %.1f times per batch", allocs)
	}
}

func TestBatchRoundTripMatchesPerTupleDecode(t *testing.T) {
	// The two encodings must agree on content: encode v3, decode, then
	// re-encode each tuple with the v1 codec and compare with a direct
	// v1 encoding of the originals.
	want := batchTuples(20)
	buf, err := AppendEncodeBatch(nil, batchSchema, want)
	if err != nil {
		t.Fatal(err)
	}
	var a Arena
	got, _, err := DecodeBatchInto(buf, batchSchema, &a)
	if err != nil {
		t.Fatal(err)
	}
	var v1got, v1want []byte
	for i := range want {
		v1want = AppendEncode(v1want, want[i])
		v1got = AppendEncode(v1got, got[i])
	}
	if !bytes.Equal(v1got, v1want) {
		t.Error("batch round trip changed tuple content")
	}
}
