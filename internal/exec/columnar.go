// Columnar edge flow: how stream.Batch column batches move through the
// concurrent engine.
//
// With RunOptions.Columnar set, sources emit their data tuples as
// column batches (transposing row sources, or taking stream.ColSource's
// decoded batches directly) while punctuations — and therefore
// checkpoint barriers — keep travelling the row path. Because a column
// batch carries data only, every ordering and alignment invariant of
// the row engine (punct-flushes-batch, barrier counting, the sink cut)
// applies unchanged; the only new rule is that a writer flushes its open
// row buffer before forwarding a column batch, so the two lanes of one
// edge never reorder against each other.
//
// Consumers that implement ops.BatchOperator get batches natively;
// everything else — row-only operators, the replicated and
// key-partitioned splitters, sink edges — materializes rows through
// Batch.AppendRows at the boundary. Fan-out shares one batch across
// consumers by reference counting: each extra edge retains, the last
// send transfers the producer's reference, and a consumer holding a
// shared batch refines its selection through a view (see
// stream.Batch.Exclusive).

package exec

import (
	"sync/atomic"

	"streamdb/internal/stream"
)

// sendToCol delivers one column batch to a node's input channel,
// sampling the queue depth (in live rows) for MaxQueue.
func (r *concRun) sendToCol(to NodeID, port int, b *stream.Batch) {
	q := atomic.AddInt64(&r.pending[to], int64(b.N()))
	atomicMax(&r.maxQ[to], q)
	r.chans[to] <- batchMsg{port: port, col: b}
}

// addBatch forwards a column batch to every edge, consuming the
// caller's reference. The open row buffer is flushed first so row
// elements enqueued earlier keep their place; sink edges materialize
// rows (the sink contract is row-shaped), node edges share the batch by
// reference.
func (w *edgeWriter) addBatch(b *stream.Batch) {
	if len(w.edges) == 0 || b.N() == 0 {
		b.Release()
		return
	}
	w.flush()
	last := len(w.edges) - 1
	for i, ed := range w.edges {
		if ed.to < 0 {
			if w.r.colSink != nil && w.sink == nil {
				// Columnar-aware sink: hand the batch over by reference,
				// no row materialization at the output boundary.
				if i < last {
					b.Retain()
				}
				w.r.sinkCh <- sinkMsg{col: b}
				continue
			}
			out := b.AppendRows(w.r.pool.Get())
			if w.sink != nil {
				for _, e := range out {
					w.sink(e)
				}
				w.r.pool.Put(out)
			} else {
				w.r.sinkCh <- sinkMsg{col: nil, elems: out}
			}
			if i == last {
				b.Release()
			}
			continue
		}
		if i < last {
			b.Retain()
		}
		w.r.sendToCol(ed.to, ed.port, b)
	}
}

// colWriter transposes a source's row elements into column batches on
// top of an edgeWriter. Data tuples accumulate in the open column
// batch; anything row-shaped (punctuations, barriers) flushes it first,
// preserving stream order.
type colWriter struct {
	w    *edgeWriter
	pool *stream.ColPool
	cur  *stream.Batch
}

// push routes one source element: data is transposed, punctuation takes
// the row path (flushing the open batch first).
func (cw *colWriter) push(e stream.Element) {
	if e.IsPunct() {
		cw.flushCol()
		cw.w.add(e)
		return
	}
	if cw.cur == nil {
		cw.cur = cw.pool.Get()
	}
	cw.cur.AppendRow(e.Tuple)
	if cw.cur.Rows() >= cw.pool.Size() {
		cw.flushCol()
	}
}

// flushCol hands the open column batch downstream.
func (cw *colWriter) flushCol() {
	if cw.cur == nil {
		return
	}
	b := cw.cur
	cw.cur = nil
	cw.w.addBatch(b) // addBatch releases empty batches itself
}

// materialize converts a column batch message to a row batch for lanes
// that stay row-only (replicated and key-partitioned splitters), and
// drops the batch reference.
func (r *concRun) materialize(m batchMsg) batchMsg {
	elems := m.col.AppendRows(r.pool.Get())
	m.col.Release()
	return batchMsg{port: m.port, elems: elems}
}
