package ops

import (
	"testing"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// TestJoinStateExpiryEvictionConsistency pins the expired/evicted
// bookkeeping against a hand-computed trace: a tuple that is both
// expired and index-dropped inside one punctuation batch must be
// counted exactly once, as expired — never double-counted, and never
// charged to the memory cap as an eviction. The cap check sweeps first,
// so `evicted` counts only live tuples genuinely shed.
func TestJoinStateExpiryEvictionConsistency(t *testing.T) {
	a, b := joinSchemas()
	j, err := NewWindowJoin("j", a, b,
		JoinConfig{Window: window.Time(10, 10), Method: JoinHash, Key: []int{1}, MaxTuples: 3},
		JoinConfig{Window: window.Time(10, 10), Method: JoinHash, Key: []int{1}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(stream.Element) {}

	// Left inserts at ts 1, 2, 3: all live, under the cap of 3.
	j.Push(0, stream.Tup(ab(1, 1)), emit)
	j.Push(0, stream.Tup(ab(2, 2)), emit)
	j.Push(0, stream.Tup(ab(3, 3)), emit)
	if l, _ := j.WindowSizes(); l != 3 {
		t.Fatalf("after 3 inserts: left = %d, want 3", l)
	}

	// Punctuation on the right at ts 12: left cutoff 12-10 = 2, so the
	// tuples at ts 1 and 2 expire — out of FIFO and index in one batch,
	// counted once each as expired, not evicted.
	j.Push(1, stream.Punct(stream.ProgressPunct(12, 0, tuple.Time(12))), emit)
	if l, _ := j.WindowSizes(); l != 1 {
		t.Fatalf("after punct@12: left = %d, want 1 (ts 3)", l)
	}
	if le, _ := j.Expired(); le != 2 {
		t.Errorf("after punct@12: expired = %d, want 2", le)
	}
	if lv, _ := j.Evicted(); lv != 0 {
		t.Errorf("after punct@12: evicted = %d, want 0", lv)
	}

	// Three more live inserts at ts 13, 14, 15. The watermark is still
	// 12 (cutoff 2), so ts 3 is live when the cap check runs at the
	// insert of ts 15 — it is genuinely shed: evicted, not expired.
	j.Push(0, stream.Tup(ab(13, 4)), emit)
	j.Push(0, stream.Tup(ab(14, 5)), emit)
	j.Push(0, stream.Tup(ab(15, 6)), emit)
	if l, _ := j.WindowSizes(); l != 3 {
		t.Fatalf("after refill: left = %d, want 3", l)
	}
	if le, _ := j.Expired(); le != 2 {
		t.Errorf("after refill: expired = %d, want 2 (unchanged)", le)
	}
	if lv, _ := j.Evicted(); lv != 1 {
		t.Errorf("after refill: evicted = %d, want 1 (ts 3 shed by cap)", lv)
	}

	// Now let time pass via a right-side tuple at ts 30 (cutoff 20):
	// ts 13, 14, 15 expire. Had they been double-counted against the
	// cap earlier, the totals would disagree with the trace.
	j.Push(1, stream.Tup(ab(30, 99)), emit)
	l, r := j.WindowSizes()
	if l != 0 || r != 1 {
		t.Errorf("after right@30: sizes = (%d, %d), want (0, 1)", l, r)
	}
	le, re := j.Expired()
	lv, rv := j.Evicted()
	if le != 5 || lv != 1 {
		t.Errorf("final left: expired = %d, evicted = %d, want 5, 1", le, lv)
	}
	if re != 0 || rv != 0 {
		t.Errorf("final right: expired = %d, evicted = %d, want 0, 0", re, rv)
	}
}

// TestJoinStateCapSweepsExpiredFirst: when the oldest stored tuple is
// already expired at insert time, the cap must reclaim it as expiry and
// keep the live tuples — not shed a live tuple while dead state holds
// the cap hostage, and not count the dead tuple as evicted.
func TestJoinStateCapSweepsExpiredFirst(t *testing.T) {
	a, b := joinSchemas()
	j, err := NewWindowJoin("j", a, b,
		JoinConfig{Window: window.Time(10, 10), Method: JoinHash, Key: []int{1}, MaxTuples: 2},
		JoinConfig{Window: window.Time(10, 10), Method: JoinHash, Key: []int{1}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(stream.Element) {}
	j.Push(0, stream.Tup(ab(1, 1)), emit)  // will expire
	j.Push(0, stream.Tup(ab(20, 2)), emit) // live; its arrival alone does not expire ts 1
	// Right-side tuple at ts 25 advances the left watermark (cutoff 15).
	j.Push(1, stream.Tup(ab(25, 9)), emit)
	// Insert at the cap: the sweep reclaims ts 1 (expired), so ts 20
	// survives and nothing is evicted.
	j.Push(0, stream.Tup(ab(26, 3)), emit)
	if l, _ := j.WindowSizes(); l != 2 {
		t.Errorf("left = %d, want 2 (ts 20, 26)", l)
	}
	if le, _ := j.Expired(); le != 1 {
		t.Errorf("expired = %d, want 1 (ts 1)", le)
	}
	if lv, _ := j.Evicted(); lv != 0 {
		t.Errorf("evicted = %d, want 0", lv)
	}
	// The surviving live tuple must still join.
	var out []stream.Element
	j.Push(1, stream.Tup(ab(27, 2)), func(e stream.Element) { out = append(out, e) })
	if len(out) != 1 {
		t.Errorf("live tuple lost by cap handling: out = %v", out)
	}
}

// TestJoinRowWindowIndexConsistency: a row-count window displacing its
// oldest tuple must also drop it from the hash index — a stale entry
// would let a displaced tuple keep joining.
func TestJoinRowWindowIndexConsistency(t *testing.T) {
	a, b := joinSchemas()
	j, err := NewWindowJoin("j", a, b,
		JoinConfig{Window: window.Rows(2), Method: JoinHash, Key: []int{1}},
		JoinConfig{Window: window.Rows(2), Method: JoinHash, Key: []int{1}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(stream.Element) {}
	j.Push(0, stream.Tup(ab(1, 7)), emit)
	j.Push(0, stream.Tup(ab(2, 8)), emit)
	j.Push(0, stream.Tup(ab(3, 9)), emit) // displaces ip 7
	if l, _ := j.WindowSizes(); l != 2 {
		t.Fatalf("left = %d, want 2", l)
	}
	if le, _ := j.Expired(); le != 1 {
		t.Errorf("expired = %d, want 1 (row displacement)", le)
	}
	var out []stream.Element
	j.Push(1, stream.Tup(ab(4, 7)), func(e stream.Element) { out = append(out, e) })
	if len(out) != 0 {
		t.Errorf("displaced tuple joined via stale index entry: %v", out)
	}
	j.Push(1, stream.Tup(ab(5, 9)), func(e stream.Element) { out = append(out, e) })
	if len(out) != 1 {
		t.Errorf("resident tuple failed to join: %v", out)
	}
}

// TestWindowJoinClonePartitionFoldsCounters: replica counters fold into
// the parent at Flush, so post-run introspection on the original covers
// the partitioned run.
func TestWindowJoinClonePartitionFoldsCounters(t *testing.T) {
	a, b := joinSchemas()
	j, err := NewWindowJoin("j", a, b,
		JoinConfig{Window: window.Time(100, 100), Method: JoinHash, Key: []int{1}},
		JoinConfig{Window: window.Time(100, 100), Method: JoinHash, Key: []int{1}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if !j.CanPartition() {
		t.Fatal("equijoin without caps should partition")
	}
	emit := func(stream.Element) {}
	clones := [2]Operator{j.ClonePartition(), j.ClonePartition()}
	for i, c := range clones {
		cj := c.(*WindowJoin)
		if cj.parent != j {
			t.Fatal("clone parent not set")
		}
		ip := uint32(7 + i)
		c.Push(0, stream.Tup(ab(1, ip)), emit)
		c.Push(1, stream.Tup(ab(2, ip)), emit) // one match per clone
		c.Flush(emit)
		c.Flush(emit) // second flush must not double-fold
	}
	if j.Emitted() != 2 || j.Probes() != 2 {
		t.Errorf("folded emitted = %d, probes = %d, want 2, 2", j.Emitted(), j.Probes())
	}
	if j.received[0] != 2 || j.received[1] != 2 {
		t.Errorf("folded received = %v", j.received)
	}
	// Hash agreement between router and both ports: same key value must
	// route both ports to the same replica.
	lt, rt := ab(9, 42), ab(10, 42)
	if j.PartitionHash(0, lt) != j.PartitionHash(1, rt) {
		t.Error("PartitionHash disagrees across ports for equal keys")
	}
}

// TestWindowJoinCanPartitionGates: global state (caps, row windows,
// keyless theta joins) must decline partitioning.
func TestWindowJoinCanPartitionGates(t *testing.T) {
	a, b := joinSchemas()
	mk := func(lcfg, rcfg JoinConfig) *WindowJoin {
		j, err := NewWindowJoin("j", a, b, lcfg, rcfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	hash := func() JoinConfig {
		return JoinConfig{Window: window.Time(10, 10), Method: JoinHash, Key: []int{1}}
	}
	if !mk(hash(), hash()).CanPartition() {
		t.Error("plain equijoin should partition")
	}
	capped := hash()
	capped.MaxTuples = 5
	if mk(capped, hash()).CanPartition() {
		t.Error("capped join must decline: the cap is global state")
	}
	rows := JoinConfig{Window: window.Rows(4), Method: JoinHash, Key: []int{1}}
	if mk(rows, hash()).CanPartition() {
		t.Error("row-window join must decline: the row count is global state")
	}
	theta := JoinConfig{Window: window.Time(10, 10), Method: JoinNestedLoop}
	if mk(theta, theta).CanPartition() {
		t.Error("keyless theta join must decline: no key to partition on")
	}
}
