package dsms

import (
	"sync"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// SessionSource adapts a SessionServer into a stream.BulkSource (and
// stream.ColSource): the batch frames the transport decodes feed
// exec.RunWith's batched engine directly, with no per-tuple re-batching
// in between. It runs ServeBatches on a background goroutine and hands
// whole frame batches across a bounded queue; NextBatch/NextColBatch
// block until tuples arrive or every expected stream has completed.
//
// Under SessionConfig.ZeroCopy the queued tuples alias the server's
// pooled decode arenas. feed Retains each arena and pins it against the
// absolute position of its last element, so the server's own Put (which
// now only drops the server's reference) cannot recycle the storage
// while the batch is queued; the pin is Released once the engine has
// drained — and copied — past it.
type SessionSource struct {
	srv *SessionServer

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []stream.Element
	head     int
	bound    int
	done     bool
	err      error
	fed      int64 // elements ever appended (absolute)
	consumed int64 // elements ever drained (absolute)
	pins     []arenaPin
	colPool  *stream.ColPool // lazily built for NextColBatch
}

// arenaPin holds one retained decode arena until every element decoded
// into it (absolute positions up to end, exclusive) has been drained.
type arenaPin struct {
	arena *tuple.Arena
	end   int64
}

// NewSessionSource starts serving `streams` sessions from srv and
// exposes the delivered tuples (all streams interleaved in arrival
// order) as a bulk source. queueBound caps buffered elements between
// the transport and the engine (0 = default 65536); the transport
// blocks when the engine falls behind, pushing backpressure onto the
// session acks.
func NewSessionSource(srv *SessionServer, streams, queueBound int) *SessionSource {
	if queueBound <= 0 {
		queueBound = 65536
	}
	s := &SessionSource{srv: srv, bound: queueBound}
	s.cond = sync.NewCond(&s.mu)
	go func() {
		err := srv.ServeBatches(streams, s.feed)
		s.mu.Lock()
		s.done = true
		s.err = err
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	return s
}

// feed is the ServeBatches sink. The transport's slice is reused after
// the call, so element headers are copied into the queue; the tuples
// themselves are kept by reference, pinning their decode arena (when
// pooled) until the engine drains them.
func (s *SessionSource) feed(_ string, tuples []*tuple.Tuple, arena *tuple.Arena) {
	if len(tuples) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue)-s.head > s.bound {
		s.cond.Wait()
	}
	s.queue = stream.AppendTuples(s.queue, tuples)
	s.fed += int64(len(tuples))
	if arena != nil {
		arena.Retain()
		s.pins = append(s.pins, arenaPin{arena: arena, end: s.fed})
	}
	s.cond.Broadcast()
}

// Schema implements stream.Source.
func (s *SessionSource) Schema() *tuple.Schema { return s.srv.schema }

// Next implements stream.Source.
func (s *SessionSource) Next() (stream.Element, bool) {
	out := make([]stream.Element, 0, 1)
	out, _ = s.NextBatch(out, 1)
	if len(out) == 0 {
		return stream.Element{}, false
	}
	return out[0], true
}

// NextBatch implements stream.BulkSource. It blocks until at least one
// element is available (or every stream completed), then drains up to
// max already-queued elements without further blocking. Arena-backed
// tuples are copied into fresh storage on the way out — the pins they
// leave behind are released here, after which the arenas may be zeroed
// and reused at any time.
func (s *SessionSource) NextBatch(dst []stream.Element, max int) ([]stream.Element, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == s.head && !s.done {
		s.cond.Wait()
	}
	n := len(s.queue) - s.head
	if n > max {
		n = max
	}
	if len(s.pins) > 0 {
		// Some queued tuples alias pinned arenas; materialize the whole
		// drained range (one []Tuple + one []Value allocation) so the
		// engine's copies outlive the pins released below.
		dst = appendMaterialized(dst, s.queue[s.head:s.head+n])
	} else {
		dst = append(dst, s.queue[s.head:s.head+n]...)
	}
	s.drainLocked(n)
	return dst, len(s.queue) > s.head || !s.done
}

// NextColBatch implements stream.ColSource: the drained tuples
// transpose straight into a pooled column batch — value copies, so the
// arena pins release exactly as on the row path, with no row-tuple
// materialization at all.
func (s *SessionSource) NextColBatch(max int) (*stream.Batch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == s.head && !s.done {
		s.cond.Wait()
	}
	n := len(s.queue) - s.head
	if n > max {
		n = max
	}
	if n == 0 {
		return nil, false
	}
	if s.colPool == nil {
		size := max
		if size < 256 {
			size = 256
		}
		s.colPool = stream.NewColPool(s.srv.schema, size)
	}
	b := s.colPool.Get()
	for _, e := range s.queue[s.head : s.head+n] {
		b.AppendRow(e.Tuple)
	}
	s.drainLocked(n)
	return b, len(s.queue) > s.head || !s.done
}

// drainLocked advances past n consumed elements: the queue prefix is
// zeroed (so it pins nothing against the collector) and compacted, and
// every arena whose last element is now behind the drain point is
// unpinned.
func (s *SessionSource) drainLocked(n int) {
	for i := s.head; i < s.head+n; i++ {
		s.queue[i] = stream.Element{}
	}
	s.head += n
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	}
	s.consumed += int64(n)
	k := 0
	for k < len(s.pins) && s.pins[k].end <= s.consumed {
		s.pins[k].arena.Release()
		k++
	}
	if k > 0 {
		m := copy(s.pins, s.pins[k:])
		for i := m; i < len(s.pins); i++ {
			s.pins[i] = arenaPin{}
		}
		s.pins = s.pins[:m]
	}
	s.cond.Broadcast()
}

// appendMaterialized deep-copies the elements' tuples into fresh
// backing arrays shared across the batch, detaching them from any
// decode arena. String payloads share their (immutable) bytes.
func appendMaterialized(dst []stream.Element, src []stream.Element) []stream.Element {
	nv := 0
	for _, e := range src {
		nv += len(e.Tuple.Vals)
	}
	tups := make([]tuple.Tuple, len(src))
	vals := make([]tuple.Value, nv)
	for i, e := range src {
		t := e.Tuple
		n := copy(vals, t.Vals)
		tups[i] = tuple.Tuple{Ts: t.Ts, Vals: vals[:n:n]}
		vals = vals[n:]
		dst = append(dst, stream.Tup(&tups[i]))
	}
	return dst
}

// Err reports the ServeBatches result once every stream has completed
// (nil while still serving).
func (s *SessionSource) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
