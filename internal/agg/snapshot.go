// Checkpoint support (ckpt.Snapshotter) for the aggregation operators.
// A snapshot captures the complete logical state — group tables, pane
// partial tables, watermarks, counters — in a deterministic order, so
// identical runs produce identical checkpoint bytes. Restore rebuilds
// the hash-chained tables by recomputing the fold hashes from the
// decoded key values; the recycling freelists and scratch buffers are
// deliberately not captured (they are performance state, not logical
// state).
package agg

import (
	"fmt"
	"sort"

	"streamdb/internal/ckpt"
	"streamdb/internal/tuple"
)

// State payload tags. The tag commits the concrete representation so a
// checkpoint taken with one aggregate spec fails loudly against
// another instead of misdecoding.
const (
	stateTagPartial  = 'p' // fixed-arity Partializable partial
	stateTagDistinct = 'd' // exact count-distinct hash multiset
	stateTagMedian   = 'm' // exact median value list
)

// encodeState serializes one accumulator. Synopsis-backed states
// (approximate count_distinct / median) have no faithful serialization
// — their sketches are pointer-graph internal to the synopsis package —
// so they abort the checkpoint epoch rather than silently degrading.
func encodeState(enc *ckpt.Encoder, st State) error {
	switch s := st.(type) {
	case *distinctState:
		enc.Uvarint(uint64(stateTagDistinct))
		hs := make([]uint64, 0, len(s.seen))
		for h := range s.seen {
			hs = append(hs, h)
		}
		sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
		enc.Uvarint(uint64(len(hs)))
		for _, h := range hs {
			enc.Uvarint(h)
			enc.Varint(s.seen[h])
		}
		return nil
	case *medianState:
		enc.Uvarint(uint64(stateTagMedian))
		enc.Uvarint(uint64(len(s.vals)))
		for _, v := range s.vals {
			enc.Float64(v)
		}
		return nil
	case *fmState:
		return fmt.Errorf("agg: approximate count_distinct state cannot be checkpointed")
	case *gkState:
		return fmt.Errorf("agg: approximate median state cannot be checkpointed")
	}
	p, ok := st.(Partializable)
	if !ok {
		return fmt.Errorf("agg: state %T cannot be checkpointed", st)
	}
	enc.Uvarint(uint64(stateTagPartial))
	enc.Values(p.PartialVals())
	return nil
}

// decodeState folds a serialized accumulator into a fresh state.
func decodeState(dec *ckpt.Decoder, st State) error {
	tag := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return err
	}
	switch s := st.(type) {
	case *distinctState:
		if tag != stateTagDistinct {
			return fmt.Errorf("agg: state tag %q, want count-distinct", tag)
		}
		n := dec.Uvarint()
		for i := uint64(0); i < n && dec.Err() == nil; i++ {
			h := dec.Uvarint()
			s.seen[h] = dec.Varint()
		}
		return dec.Err()
	case *medianState:
		if tag != stateTagMedian {
			return fmt.Errorf("agg: state tag %q, want median", tag)
		}
		n := dec.Uvarint()
		for i := uint64(0); i < n && dec.Err() == nil; i++ {
			s.vals = append(s.vals, dec.Float64())
		}
		return dec.Err()
	}
	p, ok := st.(Partializable)
	if !ok {
		return fmt.Errorf("agg: state %T cannot be restored", st)
	}
	if tag != stateTagPartial {
		return fmt.Errorf("agg: state tag %q, want partial", tag)
	}
	vals := dec.Values()
	if err := dec.Err(); err != nil {
		return err
	}
	return p.MergePartial(vals)
}

// chainHash recomputes the fold hash for a decoded key slice (the same
// FNV fold evalKeys performs).
func chainHash(keys []tuple.Value) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range keys {
		h ^= v.Hash()
		h *= 1099511628211
	}
	return h
}

// sortedTableGroups flattens a table's chains in deterministic key
// order.
func sortedTableGroups(tbl *groupTable) []*group {
	grps := make([]*group, 0, tbl.n)
	for _, chain := range tbl.groups {
		grps = append(grps, chain...)
	}
	sortGroups(grps)
	return grps
}

// encodeTable writes one group table (used for windows, panes, and the
// unbounded table alike).
func (g *GroupBy) encodeTable(enc *ckpt.Encoder, tbl *groupTable) error {
	enc.Varint(tbl.end)
	grps := sortedTableGroups(tbl)
	enc.Uvarint(uint64(len(grps)))
	for _, grp := range grps {
		enc.Values(grp.keys)
		for _, st := range grp.states {
			if err := encodeState(enc, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// decodeTable reads one group table, rebuilding hash chains.
func (g *GroupBy) decodeTable(dec *ckpt.Decoder) (*groupTable, error) {
	tbl := &groupTable{end: dec.Varint(), groups: make(map[uint64][]*group)}
	n := dec.Uvarint()
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		keys := dec.Values()
		states := make([]State, len(g.aggs))
		for j, a := range g.aggs {
			states[j] = a.Fn.New()
			if err := decodeState(dec, states[j]); err != nil {
				return nil, err
			}
		}
		grp := &group{keys: keys, states: states}
		h := chainHash(keys)
		tbl.groups[h] = append(tbl.groups[h], grp)
		tbl.n++
	}
	return tbl, dec.Err()
}

// Snapshot implements ckpt.Snapshotter.
func (g *GroupBy) Snapshot(enc *ckpt.Encoder) error {
	enc.Bool(g.paneAsn != nil)
	enc.Bool(g.unbounded != nil)
	enc.Bool(g.partial)
	enc.Varint(g.watermark)
	enc.Varint(g.emitted)
	enc.Int(g.maxGroups)
	enc.Varint(g.partialMark)

	starts := make([]int64, 0, len(g.windows))
	for ws := range g.windows {
		starts = append(starts, ws)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	enc.Uvarint(uint64(len(starts)))
	for _, ws := range starts {
		enc.Varint(ws)
		if err := g.encodeTable(enc, g.windows[ws]); err != nil {
			return err
		}
	}
	if g.unbounded != nil {
		if err := g.encodeTable(enc, g.unbounded); err != nil {
			return err
		}
	}
	if g.paneAsn == nil {
		return nil
	}
	ps := make([]int64, 0, len(g.panes))
	for s := range g.panes {
		ps = append(ps, s)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	enc.Uvarint(uint64(len(ps)))
	for _, s := range ps {
		p := g.panes[s]
		enc.Varint(p.start)
		if err := g.encodeTable(enc, &p.groupTable); err != nil {
			return err
		}
	}
	ws := make([]int64, 0, len(g.paneWins))
	for s := range g.paneWins {
		ws = append(ws, s)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	enc.Uvarint(uint64(len(ws)))
	for _, s := range ws {
		enc.Varint(s)
		enc.Varint(g.paneWins[s])
	}
	enc.Varint(g.paneNext)
	return nil
}

// Restore implements ckpt.Snapshotter. The receiver must be freshly
// constructed with the same specification (group exprs, aggregates,
// window, pane/legacy mode) as the snapshotted operator.
func (g *GroupBy) Restore(dec *ckpt.Decoder) error {
	if pane := dec.Bool(); pane != (g.paneAsn != nil) {
		return fmt.Errorf("agg: snapshot pane mode %v, operator %v", pane, g.paneAsn != nil)
	}
	if unb := dec.Bool(); unb != (g.unbounded != nil) {
		return fmt.Errorf("agg: snapshot unbounded mode %v, operator %v", unb, g.unbounded != nil)
	}
	if partial := dec.Bool(); partial != g.partial {
		return fmt.Errorf("agg: snapshot partial mode %v, operator %v", partial, g.partial)
	}
	g.watermark = dec.Varint()
	g.emitted = dec.Varint()
	g.maxGroups = dec.Int()
	g.partialMark = dec.Varint()

	nw := dec.Uvarint()
	for i := uint64(0); i < nw && dec.Err() == nil; i++ {
		ws := dec.Varint()
		tbl, err := g.decodeTable(dec)
		if err != nil {
			return err
		}
		g.windows[ws] = tbl
	}
	if g.unbounded != nil {
		tbl, err := g.decodeTable(dec)
		if err != nil {
			return err
		}
		g.unbounded = tbl
	}
	if g.paneAsn == nil {
		return dec.Err()
	}
	np := dec.Uvarint()
	for i := uint64(0); i < np && dec.Err() == nil; i++ {
		start := dec.Varint()
		tbl, err := g.decodeTable(dec)
		if err != nil {
			return err
		}
		g.panes[start] = &paneTable{groupTable: *tbl, start: start}
	}
	nwin := dec.Uvarint()
	for i := uint64(0); i < nwin && dec.Err() == nil; i++ {
		s := dec.Varint()
		g.paneWins[s] = dec.Varint()
	}
	g.paneNext = dec.Varint()
	g.lastPane = nil
	return dec.Err()
}

// Snapshot implements ckpt.Snapshotter for the partial-merge combiner.
func (c *PaneCombiner) Snapshot(enc *ckpt.Encoder) error {
	enc.Varint(c.watermark)
	enc.Varint(c.emitted)
	enc.Varint(c.mergeErrs)
	grps := make([]*cgroup, 0, c.n)
	for _, chain := range c.groups {
		grps = append(grps, chain...)
	}
	sort.Slice(grps, func(i, j int) bool {
		a, b := grps[i], grps[j]
		if a.end != b.end {
			return a.end < b.end
		}
		if a.start != b.start {
			return a.start < b.start
		}
		for k := range a.keys {
			if cv := a.keys[k].Compare(b.keys[k]); cv != 0 {
				return cv < 0
			}
		}
		return false
	})
	enc.Uvarint(uint64(len(grps)))
	for _, grp := range grps {
		enc.Varint(grp.end)
		enc.Varint(grp.start)
		enc.Values(grp.keys)
		for _, st := range grp.states {
			if err := encodeState(enc, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// Restore implements ckpt.Snapshotter.
func (c *PaneCombiner) Restore(dec *ckpt.Decoder) error {
	c.watermark = dec.Varint()
	c.emitted = dec.Varint()
	c.mergeErrs = dec.Varint()
	n := dec.Uvarint()
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		grp := &cgroup{end: dec.Varint(), start: dec.Varint(), keys: dec.Values()}
		grp.states = make([]State, len(c.aggs))
		for j, a := range c.aggs {
			grp.states[j] = a.Fn.New()
			if err := decodeState(dec, grp.states[j]); err != nil {
				return err
			}
		}
		h := (uint64(grp.end)*1099511628211 ^ uint64(grp.start)) * 1099511628211
		for _, k := range grp.keys {
			h ^= k.Hash()
			h *= 1099511628211
		}
		c.groups[h] = append(c.groups[h], grp)
		c.n++
	}
	return dec.Err()
}

// Snapshot implements ckpt.Snapshotter for the low-level partial
// aggregator: slot contents are positional (direct-mapped), so the
// table geometry must match at restore.
func (p *PartialAgg) Snapshot(enc *ckpt.Encoder) error {
	enc.Uvarint(uint64(len(p.slots)))
	enc.Varint(p.curBucket)
	enc.Varint(p.evictions)
	enc.Varint(p.emitted)
	enc.Varint(p.absorbed)
	used := 0
	for _, s := range p.slots {
		if s.used {
			used++
		}
	}
	enc.Uvarint(uint64(used))
	for i, s := range p.slots {
		if !s.used {
			continue
		}
		enc.Int(i)
		enc.Varint(s.bucket)
		enc.Values(s.keys)
		for _, st := range s.states {
			if err := encodeState(enc, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// Restore implements ckpt.Snapshotter.
func (p *PartialAgg) Restore(dec *ckpt.Decoder) error {
	if n := dec.Uvarint(); n != uint64(len(p.slots)) {
		return fmt.Errorf("agg: snapshot has %d slots, operator %d", n, len(p.slots))
	}
	p.curBucket = dec.Varint()
	p.evictions = dec.Varint()
	p.emitted = dec.Varint()
	p.absorbed = dec.Varint()
	used := dec.Uvarint()
	for i := uint64(0); i < used && dec.Err() == nil; i++ {
		idx := dec.Int()
		if idx < 0 || idx >= len(p.slots) {
			return fmt.Errorf("agg: snapshot slot %d out of range", idx)
		}
		s := p.slots[idx]
		s.used = true
		s.bucket = dec.Varint()
		s.keys = dec.Values()
		s.states = make([]Partializable, len(p.aggs))
		for j, a := range p.aggs {
			s.states[j] = a.Fn.New().(Partializable)
			if err := decodeState(dec, s.states[j]); err != nil {
				return err
			}
		}
	}
	return dec.Err()
}

// Snapshot implements ckpt.Snapshotter for the high-level combiner.
func (f *FinalAgg) Snapshot(enc *ckpt.Encoder) error {
	enc.Varint(f.watermk)
	enc.Varint(f.emitted)
	enc.Varint(f.mergeErrs)
	grps := make([]*fgroup, 0, f.n)
	for _, chain := range f.groups {
		grps = append(grps, chain...)
	}
	sort.Slice(grps, func(i, j int) bool {
		a, b := grps[i], grps[j]
		if a.bucket != b.bucket {
			return a.bucket < b.bucket
		}
		for k := range a.keys {
			if cv := a.keys[k].Compare(b.keys[k]); cv != 0 {
				return cv < 0
			}
		}
		return false
	})
	enc.Uvarint(uint64(len(grps)))
	for _, grp := range grps {
		enc.Varint(grp.bucket)
		enc.Values(grp.keys)
		for _, st := range grp.states {
			if err := encodeState(enc, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// Restore implements ckpt.Snapshotter.
func (f *FinalAgg) Restore(dec *ckpt.Decoder) error {
	f.watermk = dec.Varint()
	f.emitted = dec.Varint()
	f.mergeErrs = dec.Varint()
	n := dec.Uvarint()
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		grp := &fgroup{bucket: dec.Varint(), keys: dec.Values()}
		grp.states = make([]Partializable, len(f.aggs))
		for j, a := range f.aggs {
			grp.states[j] = a.Fn.New().(Partializable)
			if err := decodeState(dec, grp.states[j]); err != nil {
				return err
			}
		}
		h := uint64(grp.bucket) * 1099511628211
		for _, k := range grp.keys {
			h ^= k.Hash()
			h *= 1099511628211
		}
		f.groups[h] = append(f.groups[h], grp)
		f.n++
	}
	return dec.Err()
}
