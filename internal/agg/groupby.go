package agg

import (
	"fmt"
	"math"
	"sort"

	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// Spec describes one aggregate column: fn(arg) AS name.
type Spec struct {
	Fn   *Func
	Arg  expr.Expr // nil for count(*)
	Name string
}

// GroupBy is the windowed grouped aggregation operator implementing the
// general form of slide 34:
//
//	select G, F1 from S where P group by G having F2 op theta
//
// Results for a window instance are emitted when the operator's notion
// of time passes the window's end — time advances with tuple timestamps
// and with progress punctuations (slide 28's "similar utility in query
// processing"). For unbounded (no-window) queries results appear only at
// Flush, the blocking behaviour that motivates windows in the first
// place.
type GroupBy struct {
	name      string
	groupBy   []expr.Expr
	groupName []string
	keyCols   []int // fast lane: group-by is all bare columns; nil = generic
	aggs      []Spec
	having    expr.Expr // evaluated over the output schema; may be nil
	spec      window.Spec
	assigner  *window.Assigner
	out       *tuple.Schema
	// windows maps window start -> group table (legacy per-window path).
	windows   map[int64]*groupTable
	unbounded *groupTable
	watermark int64
	emitted   int64
	maxGroups int           // high-water mark of concurrent group states
	scratch   []tuple.Value // reusable key buffer for fold

	// Pane path (see pane.go): active when paneAsn != nil. Each tuple
	// updates exactly one slide-aligned pane; windows are folded from
	// pane partials at close time.
	paneAsn  *window.PaneAssigner
	panes    map[int64]*paneTable
	paneWins map[int64]int64 // window start -> end, registered by panes
	lastPane *paneTable      // fast path for in-order arrivals
	paneNext int64           // earliest open window end; advance fast exit

	// Recycling (see pane.go): pane lifetime is bounded and partial
	// arity fixed, so retired pane tables and their groups are reused
	// instead of reallocated. groupFree holds groups with owned key
	// slices (overwritten in place); combFree holds combine out-groups
	// whose keys alias pane groups (only ever replaced by assignment).
	paneFree  []*paneTable
	groupFree []*group
	combFree  []*group
	combTbl   *groupTable // reusable combine output table
	dueBuf    []int64     // reusable due-window scratch

	// Partial-replica mode (engine-internal; see ClonePartial): emit
	// fixed-arity partial records plus progress punctuations instead of
	// final rows, for a downstream PaneCombiner.
	partial     bool
	partialMark int64

	// Columnar fast path (see colfold.go), planned lazily on the first
	// ProcessBatch. colKey is the dense-cache key column (-1 = generic
	// hash path); colRow/colVals are the gather scratch for rows that
	// must take the tuple path (late arrivals, unplanned shapes).
	colPlan    int8
	colKey     int
	colKeyKind tuple.Kind
	colAggs    []colAgg
	colRow     tuple.Tuple
	colVals    []tuple.Value
	// Run-fold scratch (colfold.go): resolved group pointers for one
	// equal-timestamp run, and a dense row-index ramp for batches
	// without a selection vector.
	runGroups []*group
	runRows   []int32
}

type groupTable struct {
	end int64
	// groups chains on the key hash; chains resolve hash collisions by
	// comparing key values.
	groups map[uint64][]*group
	n      int
	// cache direct-indexes groups by the raw payload of a single small
	// scalar grouping key (see colfold.go), bypassing the hash chain on
	// repeat keys. The FNV chain stays authoritative: the cache is filled
	// from chain lookups and cleared whenever groups leave the table
	// (removeMatching, recycleGroups), so snapshots never see it.
	cache []*group
}

type group struct {
	keys   []tuple.Value
	states []State
}

// NewGroupBy builds a grouped aggregate. groupBy expressions become the
// leading output fields with the given names; each agg spec appends one
// field. A zero window.Spec (KindNone) aggregates the whole stream.
func NewGroupBy(name string, in *tuple.Schema, groupBy []expr.Expr, groupNames []string, aggs []Spec, spec window.Spec, having func(out *tuple.Schema) (expr.Expr, error)) (*GroupBy, error) {
	if len(groupBy) != len(groupNames) {
		return nil, fmt.Errorf("agg: %d group exprs, %d names", len(groupBy), len(groupNames))
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fields := make([]tuple.Field, 0, len(groupBy)+len(aggs)+1)
	fields = append(fields, tuple.Field{Name: "wend", Kind: tuple.KindTime, Ordering: true})
	for i, g := range groupBy {
		fields = append(fields, tuple.Field{Name: groupNames[i], Kind: g.Kind()})
	}
	for _, a := range aggs {
		if a.Fn.NeedsArg && a.Arg == nil {
			return nil, fmt.Errorf("agg: %s requires an argument", a.Fn.Name)
		}
		argKind := tuple.KindInt
		if a.Arg != nil {
			argKind = a.Arg.Kind()
		}
		fields = append(fields, tuple.Field{Name: a.Name, Kind: a.Fn.Result(argKind)})
	}
	out := tuple.NewSchema(name, fields...)
	g := &GroupBy{
		name: name, groupBy: groupBy, groupName: groupNames, aggs: aggs,
		spec: spec, out: out, windows: make(map[int64]*groupTable),
		keyCols: expr.CompileCols(groupBy),
		scratch: make([]tuple.Value, 0, len(groupBy)),
	}
	if spec.Kind == window.KindTime {
		if window.PaneCompatible(spec) && allPartializable(aggs) {
			// Pane path: O(1) state updates per tuple, windows folded
			// from shared sub-aggregates (see pane.go). Holistic
			// aggregates (median, ...) cannot merge fixed-arity partials
			// and keep the legacy per-window path.
			pa, err := window.NewPaneAssigner(spec)
			if err != nil {
				return nil, err
			}
			g.paneAsn = pa
			g.panes = make(map[int64]*paneTable)
			g.paneWins = make(map[int64]int64)
			g.paneNext = math.MaxInt64
		} else {
			g.assigner = window.NewAssigner(spec)
		}
	} else {
		g.unbounded = &groupTable{groups: make(map[uint64][]*group)}
	}
	if having != nil {
		h, err := having(out)
		if err != nil {
			return nil, err
		}
		if h != nil && h.Kind() != tuple.KindBool {
			return nil, fmt.Errorf("agg: HAVING must be boolean")
		}
		g.having = h
	}
	return g, nil
}

// Name implements ops.Operator.
func (g *GroupBy) Name() string { return g.name }

// OutSchema implements ops.Operator.
func (g *GroupBy) OutSchema() *tuple.Schema { return g.out }

// NumInputs implements ops.Operator.
func (g *GroupBy) NumInputs() int { return 1 }

// Push implements ops.Operator.
func (g *GroupBy) Push(_ int, e stream.Element, emit ops.Emit) {
	if e.IsPunct() {
		g.advance(e.Punct.Ts, emit)
		g.closeGroups(e.Punct, emit)
		if g.partial && e.Punct.Ts > g.partialMark {
			// Forward the time advance so the downstream combiner can
			// finalize windows (and punctuation-closed groups) we have
			// already accounted for.
			g.partialMark = e.Punct.Ts
			emit(stream.Punct(&stream.Punctuation{Ts: g.partialMark}))
		}
		return
	}
	g.pushRow(e.Tuple, emit)
}

// pushRow routes one data tuple, shared by the row path (Push) and the
// columnar path's fallback lane (ProcessBatch, colfold.go).
func (g *GroupBy) pushRow(t *tuple.Tuple, emit ops.Emit) {
	if t.Ts > g.watermark {
		g.advance(t.Ts, emit)
	}
	switch {
	case g.paneAsn != nil:
		g.foldPane(t)
		g.emitProgress(emit)
	case g.assigner == nil:
		g.fold(g.unbounded, t)
		return
	default:
		for _, id := range g.assigner.Assign(t.Ts) {
			tbl, ok := g.windows[id.Start]
			if !ok {
				tbl = &groupTable{end: id.End, groups: make(map[uint64][]*group)}
				g.windows[id.Start] = tbl
			}
			g.fold(tbl, t)
		}
	}
}

// trackGroups samples the live-group high-water mark. Group counts only
// grow between removal events (advance, closeGroups, Flush), so sampling
// at those boundaries observes the exact maximum without paying an
// O(windows) scan per tuple.
func (g *GroupBy) trackGroups() {
	if n := g.liveGroups(); n > g.maxGroups {
		g.maxGroups = n
	}
}

// evalKeys extracts the tuple's grouping-key values into the reusable
// scratch buffer and returns them with their chain hash. Bare-column
// groupings take the compiled fast lane (no interface dispatch).
func (g *GroupBy) evalKeys(t *tuple.Tuple) ([]tuple.Value, uint64) {
	keys := g.scratch[:0]
	h := uint64(1469598103934665603)
	if g.keyCols != nil {
		for _, idx := range g.keyCols {
			v := t.Vals[idx]
			keys = append(keys, v)
			h ^= v.Hash()
			h *= 1099511628211
		}
	} else {
		for _, ge := range g.groupBy {
			v := ge.Eval(t)
			keys = append(keys, v)
			h ^= v.Hash()
			h *= 1099511628211
		}
	}
	g.scratch = keys
	return keys, h
}

// locateGroup resolves keys (with their chain hash h) to the table's
// group, creating one — recycled when possible — on first sight.
func (g *GroupBy) locateGroup(tbl *groupTable, keys []tuple.Value, h uint64) *group {
	for _, cand := range tbl.groups[h] {
		if keysEqual(cand.keys, keys) {
			return cand
		}
	}
	var grp *group
	if n := len(g.groupFree); n > 0 {
		// Recycled group (states already reset): overwrite the owned
		// key slice in place.
		grp = g.groupFree[n-1]
		g.groupFree = g.groupFree[:n-1]
		grp.keys = append(grp.keys[:0], keys...)
	} else {
		// Keys live as long as the group: copy them out of the
		// scratch buffer.
		kc := make([]tuple.Value, len(keys))
		copy(kc, keys)
		states := make([]State, len(g.aggs))
		for i, a := range g.aggs {
			states[i] = a.Fn.New()
		}
		grp = &group{keys: kc, states: states}
	}
	tbl.groups[h] = append(tbl.groups[h], grp)
	tbl.n++
	return grp
}

func (g *GroupBy) fold(tbl *groupTable, t *tuple.Tuple) {
	keys, h := g.evalKeys(t)
	grp := g.locateGroup(tbl, keys, h)
	for i, a := range g.aggs {
		if a.Arg == nil {
			grp.states[i].Add(tuple.Int(1))
		} else {
			grp.states[i].Add(a.Arg.Eval(t))
		}
	}
}

// advance moves the watermark and emits every window whose end has
// passed.
func (g *GroupBy) advance(now int64, emit ops.Emit) {
	if now <= g.watermark {
		return
	}
	g.trackGroups()
	g.watermark = now
	if g.paneAsn != nil {
		g.advancePanes(now, emit)
		return
	}
	if g.assigner == nil {
		return
	}
	if g.spec.Landmark {
		// Agglomerative windows emit a snapshot at every slide boundary
		// but keep accumulating (slide 27).
		tbl, ok := g.windows[0]
		if !ok {
			return
		}
		for tbl.end <= now {
			g.emitTable(tbl, emit)
			tbl.end += g.spec.Slide
		}
		return
	}
	var due []int64
	for start, tbl := range g.windows {
		if tbl.end <= now {
			due = append(due, start)
		}
	}
	// Deterministic output order across runs.
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, start := range due {
		g.emitTable(g.windows[start], emit)
		delete(g.windows, start)
	}
}

func (g *GroupBy) emitTable(tbl *groupTable, emit ops.Emit) {
	if tbl.n == 0 {
		return
	}
	// Deterministic group order: sort by key values.
	grps := make([]*group, 0, tbl.n)
	for _, chain := range tbl.groups {
		grps = append(grps, chain...)
	}
	sortGroups(grps)
	// One backing array for the whole table: emission allocates O(1)
	// slices regardless of group count. Rows escape downstream and are
	// never reused.
	arity := 1 + len(g.groupBy) + len(g.aggs)
	rows := make([]tuple.Tuple, len(grps))
	buf := make([]tuple.Value, 0, len(grps)*arity)
	for i, grp := range grps {
		start := len(buf)
		buf = append(buf, tuple.Time(tbl.end))
		buf = append(buf, grp.keys...)
		for _, st := range grp.states {
			buf = append(buf, st.Result())
		}
		rows[i] = tuple.Tuple{Ts: tbl.end, Vals: buf[start:len(buf):len(buf)]}
	}
	for i := range rows {
		out := &rows[i]
		if g.having != nil && !expr.EvalBool(g.having, out) {
			continue
		}
		g.emitted++
		emit(stream.Tup(out))
	}
}

// sortGroups orders groups by key values for deterministic output.
func sortGroups(grps []*group) {
	sort.Slice(grps, func(i, j int) bool {
		a, b := grps[i], grps[j]
		for k := range a.keys {
			if c := a.keys[k].Compare(b.keys[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// emitGroup produces one result row for a finished group, honoring
// HAVING.
func (g *GroupBy) emitGroup(end int64, grp *group, emit ops.Emit) {
	vals := make([]tuple.Value, 0, 1+len(grp.keys)+len(grp.states))
	vals = append(vals, tuple.Time(end))
	vals = append(vals, grp.keys...)
	for _, st := range grp.states {
		vals = append(vals, st.Result())
	}
	out := tuple.New(end, vals...)
	if g.having != nil && !expr.EvalBool(g.having, out) {
		return
	}
	g.emitted++
	emit(stream.Tup(out))
}

// closeGroups applies data-dependent punctuations [TMSF03] (slide 28's
// auction-close idiom): when a punctuation's constant patterns are all
// on plain grouping columns, every group matching them is complete —
// emit it immediately and release its state, without waiting for a
// window boundary. Only exact-column group expressions participate;
// computed groupings are conservatively left open.
func (g *GroupBy) closeGroups(p *stream.Punctuation, emit ops.Emit) {
	if len(p.Fields) == 0 || len(g.groupBy) == 0 {
		return
	}
	g.trackGroups()
	bounds, ok := g.punctBounds(p)
	if !ok {
		return
	}
	if g.paneAsn != nil {
		g.closeGroupsPanes(p.Ts, bounds, emit)
		return
	}
	closeIn := func(tbl *groupTable, end int64) {
		done := tbl.removeMatching(bounds)
		sortGroups(done)
		for _, grp := range done {
			g.emitGroup(end, grp, emit)
		}
	}
	if g.unbounded != nil {
		closeIn(g.unbounded, p.Ts)
	}
	for _, tbl := range g.windows {
		closeIn(tbl, p.Ts)
	}
}

// keyBound binds one punctuation pattern to a group-by key position.
type keyBound struct {
	groupIdx int
	pat      stream.Pattern
}

// punctBounds maps each punctuation pattern to a group-by position;
// ok=false when any pattern is on a column the grouping does not
// preserve (computed groupings are conservatively left open).
func (g *GroupBy) punctBounds(p *stream.Punctuation) ([]keyBound, bool) {
	var bounds []keyBound
	for col, pat := range p.Fields {
		matched := false
		for gi, ge := range g.groupBy {
			if c, ok := ge.(*expr.Col); ok && c.Index == col {
				bounds = append(bounds, keyBound{groupIdx: gi, pat: pat})
				matched = true
				break
			}
		}
		if !matched {
			return nil, false
		}
	}
	return bounds, true
}

// matchBounds reports whether a group's keys satisfy every bound.
func matchBounds(keys []tuple.Value, bounds []keyBound) bool {
	for _, b := range bounds {
		if !b.pat.Matches(keys[b.groupIdx]) {
			return false
		}
	}
	return true
}

// removeMatching extracts (and removes) every group whose keys satisfy
// the bounds.
func (tbl *groupTable) removeMatching(bounds []keyBound) []*group {
	var done []*group
	for h, chain := range tbl.groups {
		keep := chain[:0]
		for _, grp := range chain {
			if matchBounds(grp.keys, bounds) {
				done = append(done, grp)
				tbl.n--
			} else {
				keep = append(keep, grp)
			}
		}
		if len(keep) == 0 {
			delete(tbl.groups, h)
		} else {
			tbl.groups[h] = keep
		}
	}
	if len(done) > 0 && tbl.cache != nil {
		// Removed groups may be dense-cached; drop the whole cache
		// rather than match bounds twice (removal is punctuation-rare).
		for i := range tbl.cache {
			tbl.cache[i] = nil
		}
	}
	return done
}

// Flush implements ops.Operator: emits all open windows (or the
// unbounded table).
func (g *GroupBy) Flush(emit ops.Emit) {
	g.trackGroups()
	if g.paneAsn != nil {
		g.flushPanes(emit)
		return
	}
	if g.assigner == nil {
		if g.unbounded != nil && g.unbounded.n > 0 {
			g.unbounded.end = g.watermark
			g.emitTable(g.unbounded, emit)
			g.unbounded = &groupTable{groups: make(map[uint64][]*group)}
		}
		return
	}
	var due []int64
	for start := range g.windows {
		due = append(due, start)
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, start := range due {
		g.emitTable(g.windows[start], emit)
		delete(g.windows, start)
	}
}

// MemSize implements ops.Operator.
func (g *GroupBy) MemSize() int {
	n := 128
	count := func(tbl *groupTable) {
		for _, chain := range tbl.groups {
			if len(chain) == 0 {
				continue // recycled table: warm but empty hash chain
			}
			grp := chain[0]
			n += 32 * len(chain)
			for _, k := range grp.keys {
				n += k.MemSize()
			}
			for _, st := range grp.states {
				n += st.MemSize()
			}
		}
	}
	for _, tbl := range g.windows {
		count(tbl)
	}
	for _, p := range g.panes {
		count(&p.groupTable)
	}
	n += 16 * len(g.paneWins)
	if g.unbounded != nil {
		count(g.unbounded)
	}
	return n
}

// liveGroups counts group states across all open windows: the
// bounded-memory quantity [ABB+02] analyzes (slides 35-36).
func (g *GroupBy) liveGroups() int {
	n := 0
	for _, tbl := range g.windows {
		n += tbl.n
	}
	for _, p := range g.panes {
		n += p.n
	}
	if g.unbounded != nil {
		n += g.unbounded.n
	}
	return n
}

// MaxGroups reports the high-water mark of concurrent group states.
func (g *GroupBy) MaxGroups() int {
	g.trackGroups() // fold in groups created since the last boundary
	return g.maxGroups
}

// Emitted reports the number of result rows produced.
func (g *GroupBy) Emitted() int64 { return g.emitted }

// Selectivity implements ops.Costs: aggregation is data-reducing; the
// precise ratio is workload-dependent, so report observed behaviour.
func (g *GroupBy) Selectivity() float64 { return 0.1 }

// UnitCost implements ops.Costs.
func (g *GroupBy) UnitCost() float64 {
	return float64(len(g.groupBy) + len(g.aggs))
}

func keysEqual(a, b []tuple.Value) bool {
	for i := range a {
		av, bv := a[i], b[i]
		if av.IsNull() && bv.IsNull() {
			continue
		}
		if !av.Equal(bv) {
			return false
		}
	}
	return true
}
