package ops

import (
	"math/rand"
	"testing"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// refJoinSize computes the exact equijoin cardinality of two key slices.
func refJoinSize(l, r []uint32) int {
	counts := map[uint32]int{}
	for _, k := range l {
		counts[k]++
	}
	n := 0
	for _, k := range r {
		n += counts[k]
	}
	return n
}

func xjoinRun(t *testing.T, budget int, lKeys, rKeys []uint32) (int, *XJoin) {
	t.Helper()
	a, b := joinSchemas()
	x, err := NewXJoin("x", a, b, []int{1}, []int{1}, 4, budget, nil, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out := 0
	emit := func(stream.Element) { out++ }
	// Interleave arrivals.
	i, j := 0, 0
	ts := int64(0)
	for i < len(lKeys) || j < len(rKeys) {
		ts++
		if i < len(lKeys) && (j >= len(rKeys) || i <= j) {
			x.Push(0, stream.Tup(ab(ts, lKeys[i])), emit)
			i++
		} else {
			x.Push(1, stream.Tup(ab(ts, rKeys[j])), emit)
			j++
		}
	}
	x.Flush(emit)
	return out, x
}

func TestXJoinNoSpillMatchesReference(t *testing.T) {
	l := []uint32{1, 2, 3, 2}
	r := []uint32{2, 2, 4}
	got, x := xjoinRun(t, 1000, l, r)
	if want := refJoinSize(l, r); got != want {
		t.Errorf("join size = %d, want %d", got, want)
	}
	if _, spills, _, _ := x.Stats(); spills != 0 {
		t.Errorf("unexpected spills: %d", spills)
	}
}

func TestXJoinSpillExactlyOnce(t *testing.T) {
	// Force heavy spilling with a tiny budget; results must match the
	// reference join exactly (no duplicates, no losses).
	rng := rand.New(rand.NewSource(11))
	var l, r []uint32
	for i := 0; i < 400; i++ {
		l = append(l, uint32(rng.Intn(50)))
		r = append(r, uint32(rng.Intn(50)))
	}
	got, x := xjoinRun(t, 32, l, r)
	want := refJoinSize(l, r)
	if got != want {
		t.Fatalf("spilled join size = %d, want %d", got, want)
	}
	_, spills, spilled, diskBytes := x.Stats()
	if spills == 0 || spilled == 0 || diskBytes == 0 {
		t.Errorf("expected spilling: spills=%d tuples=%d bytes=%d", spills, spilled, diskBytes)
	}
	if x.MemSize() > 1<<20 {
		t.Errorf("memory not bounded: %d", x.MemSize())
	}
}

func TestXJoinSpillBudgetSweepProperty(t *testing.T) {
	// Join size must be invariant to the memory budget.
	rng := rand.New(rand.NewSource(7))
	var l, r []uint32
	for i := 0; i < 150; i++ {
		l = append(l, uint32(rng.Intn(20)))
		r = append(r, uint32(rng.Intn(20)))
	}
	want := refJoinSize(l, r)
	for _, budget := range []int{8, 16, 64, 256, 10000} {
		got, _ := xjoinRun(t, budget, l, r)
		if got != want {
			t.Errorf("budget %d: join size = %d, want %d", budget, got, want)
		}
	}
}

func TestXJoinValidation(t *testing.T) {
	a, b := joinSchemas()
	if _, err := NewXJoin("x", a, b, nil, nil, 4, 10, nil, t.TempDir()); err == nil {
		t.Error("missing keys accepted")
	}
	if _, err := NewXJoin("x", a, b, []int{1}, []int{1}, 0, 0, nil, ""); err != nil {
		t.Errorf("defaulted construction failed: %v", err)
	}
}

func TestXJoinFlushIdempotent(t *testing.T) {
	l := []uint32{1, 1}
	r := []uint32{1}
	a, b := joinSchemas()
	x, _ := NewXJoin("x", a, b, []int{1}, []int{1}, 2, 1, nil, t.TempDir())
	out := 0
	emit := func(stream.Element) { out++ }
	x.Push(0, stream.Tup(ab(1, l[0])), emit)
	x.Push(0, stream.Tup(ab(2, l[1])), emit)
	x.Push(1, stream.Tup(ab(3, r[0])), emit)
	x.Flush(emit)
	first := out
	x.Flush(emit)
	if out != first {
		t.Errorf("second Flush emitted more: %d -> %d", first, out)
	}
	if want := refJoinSize(l, r); first != want {
		t.Errorf("join size = %d, want %d", first, want)
	}
}

func TestXJoinIgnoresPunctuation(t *testing.T) {
	a, b := joinSchemas()
	x, _ := NewXJoin("x", a, b, []int{1}, []int{1}, 2, 100, nil, t.TempDir())
	out := 0
	x.Push(0, stream.Punct(stream.ProgressPunct(1, 0, tuple.Time(1))), func(stream.Element) { out++ })
	if out != 0 {
		t.Error("punctuation produced output")
	}
}
