// Command streamd runs one node of the distributed 3-level
// architecture (slides 14, 54-55). A high-level node listens for
// partial-aggregate streams from low-level nodes and prints merged
// per-minute results; a low-level node generates (or would tap) raw
// traffic, runs the decomposed filter + bounded partial aggregation,
// and ships the reduced stream upward.
//
// The uplink is the fault-tolerant session transport (DESIGN.md
// "Fault tolerance"): low-level nodes ride out connection loss by
// reconnecting with exponential backoff and resuming from the last
// acknowledged sequence number, and the high level dedupes, so a
// dropped TCP connection costs retransmission instead of killing the
// standing query. With -wirebatch > 1 the uplink negotiates wire v3
// (DESIGN.md §10): partials travel in schema-coded batch frames that
// drop the per-tuple self-description and amortize framing; against an
// older high-level node the writer degrades to per-tuple v2 frames
// automatically.
//
// Demo (one process per node):
//
//	streamd -mode high -listen :7070 -nodes 2
//	streamd -mode low  -connect localhost:7070 -n 200000 -seed 1
//	streamd -mode low  -connect localhost:7070 -n 200000 -seed 2
//
// Or everything in-process, with injected faults to watch recovery:
//
//	streamd -mode demo -nodes 3 -n 100000 -faultrate 0.05
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"streamdb/internal/ckpt"
	"streamdb/internal/dsms"
	"streamdb/internal/exec"
	"streamdb/internal/optimizer/share"
	"streamdb/internal/query"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "streamd: "+format+"\n", args...)
	os.Exit(1)
}

func logf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "streamd: "+format+"\n", args...)
}

// decomposeSQL is the standing query both levels agree on, decomposed
// automatically per slide 54: the filter plus a bounded partial
// aggregation run at each observation point; merging runs here.
const decomposeSQL = `select srcIP, count(*) as pkts, sum(length) as bytes
	from Traffic [range 60] where length > 512 group by srcIP`

func decomposition() *dsms.Decomposition {
	cat := query.NewCatalog()
	cat.Register("Traffic", stream.TrafficSchema("Traffic"))
	d, err := query.Decompose(decomposeSQL, cat, 4096)
	if err != nil {
		fatalf("%v", err)
	}
	return d
}

// lowConfig carries the uplink tuning flags shared by low and demo
// modes.
type lowConfig struct {
	addr      string
	retry     int           // max attempts per dial / send round
	timeout   time.Duration // per-frame I/O deadline
	faultRate float64       // injected drop rate (demo chaos)
	wireBatch int           // >1: v3 schema-coded batch frames of this size
	columnar  bool          // filter via selection-vector kernels over column batches
}

// runLow runs one observation point: raw traffic through the
// decomposed low-level plan, partials shipped over a ReconnectWriter.
// Transient uplink errors are retried inside the writer; only
// exhausting every attempt surfaces as an error here.
func runLow(d *dsms.Decomposition, cfg lowConfig, n int, seed int64) (raw, partials int64, st dsms.ReconnectStats, err error) {
	dials := 0
	rcfg := dsms.ReconnectConfig{
		StreamID: fmt.Sprintf("low-%d", seed),
		Dial: func() (net.Conn, error) {
			c, err := net.Dial("tcp", cfg.addr)
			if err != nil || cfg.faultRate == 0 {
				return c, err
			}
			dials++
			return dsms.InjectFaults(c, dsms.FaultConfig{
				Seed:        seed*10000 + int64(dials),
				DropRate:    cfg.faultRate,
				PartialRate: cfg.faultRate / 4,
				CorruptRate: cfg.faultRate / 4,
			}), nil
		},
		MaxAttempts: cfg.retry,
		Timeout:     cfg.timeout,
		Seed:        seed,
	}
	if cfg.wireBatch > 1 {
		// Negotiate wire v3: partials ride schema-coded batch frames,
		// degrading to per-tuple v2 against an older high-level node.
		rcfg.Schema = d.PartialSchema()
		rcfg.WireBatch = cfg.wireBatch
	}
	w, err := dsms.NewReconnectWriter(rcfg)
	if err != nil {
		return 0, 0, st, err
	}
	ll, err := d.NewLowLevel("lfta")
	if err != nil {
		return 0, 0, st, err
	}
	var sendErr error
	emit := func(e stream.Element) {
		if sendErr == nil {
			sendErr = w.Send(e.Tuple)
		}
	}
	src := stream.Limit(stream.NewTrafficStream(seed, 100000, 5000), n)
	if cfg.columnar {
		// Columnar A/B lane (-columnar, the default): raw tuples
		// transpose into column batches and the filter runs its
		// selection-vector kernel; output is identical to the row loop
		// below on the same input.
		pool := stream.NewColPool(src.Schema(), 256)
		cur := pool.Get()
		flush := func() {
			if cur.Rows() > 0 {
				ll.PushBatch(cur, emit)
				cur = pool.Get()
			}
		}
		for {
			e, ok := src.Next()
			if !ok || sendErr != nil {
				break
			}
			if e.IsPunct() {
				flush()
				ll.Push(e, emit)
				continue
			}
			cur.AppendRow(e.Tuple)
			if cur.Rows() >= pool.Size() {
				flush()
			}
		}
		flush()
		cur.Release()
	} else {
		for {
			e, ok := src.Next()
			if !ok || sendErr != nil {
				break
			}
			ll.Push(e, emit)
		}
	}
	if sendErr == nil {
		ll.Flush(emit)
	}
	if sendErr != nil {
		w.Close()
		return ll.RawIn, ll.PartialsOut, w.Stats(), fmt.Errorf("send: %w", sendErr)
	}
	if err := w.Close(); err != nil {
		return ll.RawIn, ll.PartialsOut, w.Stats(), fmt.Errorf("close: %w", err)
	}
	return ll.RawIn, ll.PartialsOut, w.Stats(), nil
}

func reportLow(seed int64, raw, partials int64, st dsms.ReconnectStats) {
	fmt.Printf("low-level node %d: %d raw -> %d partials (%.1fx reduction)\n",
		seed, raw, partials, float64(raw)/float64(partials))
	if st.Reconnects > 0 {
		fmt.Printf("low-level node %d: %d reconnects, %d tuples resent, mean recovery %.1fms\n",
			seed, st.Reconnects, st.Resent,
			float64(st.RecoveryNanos)/float64(st.Reconnects)/1e6)
	}
}

// highConfig carries the merge-point tuning and durability flags
// shared by high and demo modes.
type highConfig struct {
	nodes      int
	idle       time.Duration
	batch      int           // ingest micro-batch per stream (1 = per-tuple)
	ckptDir    string        // durable checkpoint directory; "" = disabled
	ckptEvery  int           // partial records between checkpoints
	statsEvery time.Duration // period between NodeStats JSON dumps; 0 = off
}

// runHigh runs the merge point: a SessionServer that dedupes resumed
// streams feeds the high-level merge plan through a push-fed execution
// graph. Session churn (connects, resumes, dead peers) is logged to
// stderr as it happens.
//
// Ingest is micro-batched per stream: partials accumulate in a
// per-stream buffer and enter the merge plan `batch` at a time, so the
// plan's global mutex is taken once per batch instead of once per
// tuple. Buffering is bounded and flushed completely before the final
// punctuation, and the merge plan advances on watermarks, so batching
// only adds bounded ingest latency — final results are unchanged.
//
// With -checkpoint-dir set, the graph's state (the merging aggregator)
// is checkpointed to a durable store every -checkpoint-interval partial
// records, together with each session's applied sequence number at that
// cut. Session acknowledgements are capped at the last committed floor
// (DurableSeq), so clients keep the un-checkpointed tail in their
// replay buffers; a restarted process restores the aggregator, seeds
// sessions at the committed floors (InitialSeqs), and receives exactly
// the tail again — no loss, and duplicates past the floor are deduped
// by the session layer. Micro-batched ingest stays crash-safe because
// the per-stream cut counts only tuples actually fed to the graph:
// buffered-but-unfed partials are never acknowledged past the floor.
func runHigh(d *dsms.Decomposition, ln net.Listener, cfg highConfig) {
	high, err := d.NewHighLevel("hfta")
	if err != nil {
		fatalf("%v", err)
	}
	var finals int64
	g := exec.NewGraph(func(e stream.Element) {
		finals++
		t := e.Tuple
		bucket, _ := t.Vals[0].AsTime()
		ip, _ := t.Vals[1].AsUint()
		pkts, _ := t.Vals[2].AsInt()
		bytes, _ := t.Vals[3].AsFloat()
		fmt.Printf("minute %4d  src %-15s  pkts %6d  bytes %12.0f\n",
			bucket/(60*stream.Second), tuple.FormatIPv4(uint32(ip)), pkts, bytes)
	})
	q := stream.NewQueue(d.PartialSchema())
	si := g.AddSource(q)
	hid := g.AddOp(high)
	if err := g.ConnectSource(si, hid, 0); err != nil {
		fatalf("%v", err)
	}
	if err := g.ConnectOut(hid); err != nil {
		fatalf("%v", err)
	}

	scfg := dsms.SessionConfig{IdleTimeout: cfg.idle, Logf: logf}
	var store *ckpt.Store
	var epoch int64
	seqs := map[string]uint64{}    // per-stream tuples fed to the graph
	durable := map[string]uint64{} // per-stream floor of the last committed checkpoint
	var durMu sync.Mutex
	if cfg.ckptDir != "" {
		store, err = ckpt.Open(cfg.ckptDir)
		if err != nil {
			fatalf("checkpoint store: %v", err)
		}
		latest, err := store.Latest()
		if err != nil {
			fatalf("checkpoint recovery: %v", err)
		}
		if latest != nil {
			epoch = latest.Epoch
			init := map[string]uint64{}
			for k, v := range latest.Meta {
				if id, ok := strings.CutPrefix(k, "seq."); ok {
					init[id] = v
					seqs[id] = v
					durable[id] = v
				}
			}
			// The session transport owns replay: resumed streams
			// retransmit everything past the committed floor, so the
			// graph source itself fast-forwards nothing.
			for k := range latest.Meta {
				if strings.HasPrefix(k, "src") {
					latest.Meta[k] = 0
				}
			}
			if err := g.RestoreFrom(latest); err != nil {
				fatalf("checkpoint restore: %v", err)
			}
			finals = latest.OutSeq
			scfg.InitialSeqs = init
			logf("recovered checkpoint epoch %d: merge state restored, %d final rows already delivered, %d stream floors",
				latest.Epoch, latest.OutSeq, len(init))
		}
		scfg.DurableSeq = func(id string) uint64 {
			durMu.Lock()
			defer durMu.Unlock()
			return durable[id]
		}
	}
	srv := dsms.NewSessionServer(ln, d.PartialSchema(), scfg)

	var mu sync.Mutex
	// -stats: a ticker goroutine dumps every node's counters as one JSON
	// line to stderr. The dump takes the ingest mutex, so the graph is
	// quiescent (between Pump calls) exactly as AllStats requires; under
	// an adaptive run the snapshot includes the controller's live batch
	// target, replica width, and shed rate per node.
	statsDone := make(chan struct{})
	if cfg.statsEvery > 0 {
		go func() {
			t := time.NewTicker(cfg.statsEvery)
			defer t.Stop()
			for {
				select {
				case <-statsDone:
					return
				case <-t.C:
					mu.Lock()
					b, err := json.Marshal(g.AllStats())
					mu.Unlock()
					if err != nil {
						logf("stats: %v", err)
						continue
					}
					logf("stats %s", b)
				}
			}
		}()
	}
	defer close(statsDone)
	var received, sinceCkpt int64
	checkpoint := func() { // called with mu held, between Pump calls
		epoch++
		extra := make(map[string]uint64, len(seqs))
		for id, v := range seqs {
			extra["seq."+id] = v
		}
		if err := g.Checkpoint(store, epoch, finals, extra); err != nil {
			logf("checkpoint epoch %d failed: %v; checkpointing disabled", epoch, err)
			store = nil
			return
		}
		durMu.Lock()
		for id, v := range seqs {
			durable[id] = v
		}
		durMu.Unlock()
		logf("checkpoint epoch %d committed at %d partials, %d final rows", epoch, received, finals)
	}
	batch := cfg.batch
	if batch < 1 {
		batch = 1
	}
	var bufMu sync.Mutex
	bufs := map[string][]*tuple.Tuple{}
	push := func(id string, tps []*tuple.Tuple) {
		mu.Lock()
		received += int64(len(tps))
		seqs[id] += uint64(len(tps))
		for _, tp := range tps {
			q.Feed(stream.Tup(tp))
		}
		g.Pump(-1)
		if store != nil {
			sinceCkpt += int64(len(tps))
			if sinceCkpt >= int64(cfg.ckptEvery) {
				sinceCkpt = 0
				checkpoint()
			}
		}
		mu.Unlock()
	}
	// ServeBatches hands over whole decoded wire batches: one callback
	// (and one buffer append) per v3 frame instead of per tuple. v2
	// sessions arrive as single-tuple slices, so behavior is unchanged
	// for old low-level nodes. This server does not enable ZeroCopy, so
	// the tuples are heap-allocated and safe to hold in the ingest
	// buffers without pinning the (always-nil) decode arena.
	err = srv.ServeBatches(cfg.nodes, func(id string, tps []*tuple.Tuple, _ *tuple.Arena) {
		if batch == 1 {
			push(id, tps)
			return
		}
		bufMu.Lock()
		bufs[id] = append(bufs[id], tps...)
		var full []*tuple.Tuple
		if len(bufs[id]) >= batch {
			full = bufs[id]
			bufs[id] = make([]*tuple.Tuple, 0, batch)
		}
		bufMu.Unlock()
		if full != nil {
			push(id, full)
		}
	})
	if err != nil {
		fatalf("serve: %v", err)
	}
	// All sessions are done: drain every open ingest buffer before the
	// closing punctuation so no partial is left behind.
	bufMu.Lock()
	for id, b := range bufs {
		push(id, b)
	}
	bufs = nil
	bufMu.Unlock()
	mu.Lock()
	q.Feed(stream.Punct(&stream.Punctuation{Ts: 1 << 62}))
	g.Pump(-1)
	g.Finish()
	mu.Unlock()
	// An operator panic is detached from the run, not swallowed: report
	// every recorded failure and exit nonzero so supervisors see it.
	if err := g.Err(); err != nil {
		for _, f := range g.Failures() {
			logf("node failure: node %d (%s): %v", f.Node, f.Op, f.Panic)
		}
		fatalf("merge graph failed: %v", err)
	}
	st := srv.Stats()
	fmt.Printf("high-level: %d partial records merged into %d final rows\n", received, finals)
	fmt.Printf("high-level: %d sessions, %d resumes, %d duplicate frames discarded, %d corrupt frames rejected\n",
		st.Sessions, st.Reconnects, st.Dupes, st.Corrupt)
}

// multiTemplates are the standing-query shapes -mode multi instantiates
// round-robin; only these distinct predicates are ever compiled, no
// matter how many queries register.
var multiTemplates = []string{
	"select * from Traffic where length > 1200",
	"select srcIP, length from Traffic where length > 1200",
	"select * from Traffic where length < 100",
	"select srcIP from Traffic where protocol = 17",
	"select srcIP, destIP from Traffic where protocol = 6 and length > 512",
	"select destIP from Traffic where length > 512 and protocol = 6",
	"select * from Traffic",
}

// runMulti demonstrates multi-query processing (slide 45): nq standing
// queries over one Traffic stream, served by a single shared fan-out
// node. Queries register and drop at runtime — a third of the way in,
// more queries join; at two thirds, some leave — without restarting or
// re-planning the co-resident queries, whose outputs are unaffected.
func runMulti(nq, n int, seed int64) {
	cat := query.NewCatalog()
	sch := stream.TrafficSchema("Traffic")
	cat.Register("Traffic", sch)
	sp := query.NewSharedPlan(cat)

	counts := make([]int64, nq)
	register := func(q int) int {
		qq := q
		id, err := sp.Register(multiTemplates[q%len(multiTemplates)],
			share.Sinks{Row: func(e stream.Element) {
				if !e.IsPunct() {
					counts[qq]++
				}
			}})
		if err != nil {
			fatalf("register query %d: %v", q, err)
		}
		return id
	}
	// Two thirds of the fleet is standing before traffic starts.
	initial := nq - nq/3
	ids := make([]int, 0, nq)
	for q := 0; q < initial; q++ {
		ids = append(ids, register(q))
	}

	qu := stream.NewQueue(sch)
	g := exec.NewGraph(func(stream.Element) {})
	if err := sp.Build(g, map[string]stream.Source{"Traffic": qu}); err != nil {
		fatalf("%v", err)
	}
	src := stream.Limit(stream.NewTrafficStream(seed, 100000, 5000), n)
	fed := 0
	pump := func(until int) {
		for fed < until {
			e, ok := src.Next()
			if !ok {
				break
			}
			qu.Feed(e)
			fed++
			if fed%1024 == 0 {
				g.Pump(-1)
			}
		}
		g.Pump(-1)
	}

	pump(n / 3)
	// Runtime registration: the rest of the fleet joins the live graph.
	for q := initial; q < nq; q++ {
		ids = append(ids, register(q))
	}
	logf("multi: %d queries joined at element %d (no restart)", nq-initial, fed)
	pump(2 * n / 3)
	// Runtime drop: every fourth query leaves.
	dropped := 0
	for q := 0; q < nq; q += 4 {
		if err := sp.Drop(ids[q]); err != nil {
			fatalf("drop query %d: %v", q, err)
		}
		dropped++
	}
	logf("multi: %d queries dropped at element %d (co-resident queries undisturbed)", dropped, fed)
	pump(n)
	g.Finish()

	node := sp.Node("Traffic")
	shared, naive := node.Stats()
	fmt.Printf("multi-query: %d elements through %d standing queries (%d live at end)\n",
		fed, nq, sp.Queries())
	fmt.Printf("  %d distinct predicates, %d kernel nodes after prefix factoring\n",
		node.DistinctPredicates(), node.KernelNodes())
	fmt.Printf("  predicate evaluations: %d shared vs %d per-query deployment (%.1fx saving)\n",
		shared, naive, float64(naive)/float64(shared))
	show := nq
	if show > 8 {
		show = 8
	}
	for q := 0; q < show; q++ {
		fmt.Printf("  q%-3d %-70s %8d rows\n", q, multiTemplates[q%len(multiTemplates)], counts[q])
	}
	if show < nq {
		fmt.Printf("  ... %d more queries\n", nq-show)
	}
}

func main() {
	mode := flag.String("mode", "demo", "high | low | demo | multi")
	listen := flag.String("listen", ":7070", "high: listen address")
	connect := flag.String("connect", "localhost:7070", "low: high-level node address")
	nodes := flag.Int("nodes", 2, "high/demo: number of low-level nodes")
	n := flag.Int("n", 100000, "low/demo: packets per low-level node")
	seed := flag.Int64("seed", 1, "low: generator seed")
	retry := flag.Int("retry", 8, "low/demo: max reconnect/send attempts before giving up")
	timeout := flag.Duration("timeout", 5*time.Second, "low/demo: per-frame I/O deadline; high: 2x this is the idle timeout")
	faultRate := flag.Float64("faultrate", 0, "demo: injected connection-drop rate per write (chaos)")
	ingestBatch := flag.Int("ingestbatch", 64, "high/demo: partial records buffered per stream before entering the merge plan (1 = per-tuple)")
	wireBatch := flag.Int("wirebatch", 16, "low/demo: tuples per wire v3 batch frame on the uplink (1 = legacy per-tuple v2 frames)")
	columnar := flag.Bool("columnar", true, "low/demo: run the low-level filter through the columnar selection-vector kernel (false = row-at-a-time; output is identical). The same lane drives exec-engine window joins: single INT/UINT/TIME equijoin keys vectorize, anything else (generic or multi-column keys, rows-windows, MaxTuples) falls back to the row path — observable per node via NodeStats.Batches/RowFallbacks")
	ckptDir := flag.String("checkpoint-dir", "", "high/demo: durable checkpoint directory (empty = disabled); on restart the merge state is recovered and sessions replay from the committed floor")
	ckptEvery := flag.Int("checkpoint-interval", 5000, "high/demo: partial records between checkpoints")
	stats := flag.Duration("stats", 0, "high/demo: period between per-node NodeStats JSON dumps on stderr (0 = disabled); each line snapshots In/Out/MaxQueue/MaxMemory/Routed/Batches/RowFallbacks plus the adaptive controller's live BatchTarget, Replicas, ShedRate and Rescales")
	queries := flag.Int("queries", 64, "multi: number of standing queries sharing one Traffic scan")
	flag.Parse()

	if *mode == "multi" {
		runMulti(*queries, *n, *seed)
		return
	}
	d := decomposition()
	switch *mode {
	case "high":
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fatalf("%v", err)
		}
		defer ln.Close()
		fmt.Printf("high-level node on %s, awaiting %d low-level nodes\n", ln.Addr(), *nodes)
		runHigh(d, ln, highConfig{nodes: *nodes, idle: 2 * *timeout, batch: *ingestBatch, ckptDir: *ckptDir, ckptEvery: *ckptEvery, statsEvery: *stats})
	case "low":
		cfg := lowConfig{addr: *connect, retry: *retry, timeout: *timeout, wireBatch: *wireBatch, columnar: *columnar}
		raw, partials, st, err := runLow(d, cfg, *n, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		reportLow(*seed, raw, partials, st)
	case "demo":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("%v", err)
		}
		defer ln.Close()
		if *columnar {
			fmt.Println("columnar lane on: low-level filters run selection-vector kernels;" +
				" engine window joins vectorize on single INT/UINT/TIME equijoin keys and" +
				" fall back to the row path otherwise (see NodeStats.Batches/RowFallbacks)")
		}
		var wg sync.WaitGroup
		for i := 0; i < *nodes; i++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				cfg := lowConfig{
					addr:      ln.Addr().String(),
					retry:     *retry,
					timeout:   *timeout,
					faultRate: *faultRate,
					wireBatch: *wireBatch,
					columnar:  *columnar,
				}
				raw, partials, st, err := runLow(d, cfg, *n, seed)
				if err != nil {
					logf("low-level node %d: %v", seed, err)
					return
				}
				reportLow(seed, raw, partials, st)
			}(int64(i + 1))
		}
		runHigh(d, ln, highConfig{nodes: *nodes, idle: 2 * *timeout, batch: *ingestBatch, ckptDir: *ckptDir, ckptEvery: *ckptEvery, statsEvery: *stats})
		wg.Wait()
	default:
		fatalf("unknown mode %q", *mode)
	}
}
