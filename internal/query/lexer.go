// Package query implements the declarative layer of the DSMS: a
// CQL/GSQL-hybrid stream query language (slide 25), its parser, the
// semantic analyzer — including the bounded-memory analysis of
// aggregate queries [ABB+02] (slides 35-36) — and the physical planner
// that lowers queries onto the operators of internal/ops and
// internal/agg.
//
// The dialect:
//
//	SELECT [DISTINCT] expr [AS name], agg(expr|*) [AS name], ...
//	FROM stream ['[' RANGE n [SLIDE m] | ROWS n | LANDMARK SLIDE n ']'] [AS alias]
//	     [, stream [window] [AS alias]]
//	[WHERE predicate]
//	[GROUP BY expr [AS name], ...]
//	[HAVING predicate]
//	[WITH APPROX]
//
// Durations accept NS/MS/SECONDS/MINUTES suffixes (default seconds),
// matching the tutorial's "[window T]" notation (slide 30) and GSQL's
// time/60 idiom (slide 13).
package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators
	tokKeyword // recognized keywords, uppercased
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IS": true, "NULL": true,
	"TRUE": true, "FALSE": true,
	"RANGE": true, "SLIDE": true, "ROWS": true, "LANDMARK": true,
	"UNBOUNDED": true, "PARTITION": true, "PUNCTUATED": true,
	"NS": true, "MS": true, "SECOND": true, "SECONDS": true,
	"MINUTE": true, "MINUTES": true,
	"WITH": true, "APPROX": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexWord()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
		} else if c == '.' && !seenDot {
			seenDot = true
			l.pos++
		} else {
			break
		}
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexWord() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
			l.pos++
		} else {
			break
		}
	}
	word := l.src[start:l.pos]
	up := strings.ToUpper(word)
	if keywords[up] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
	}
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("query: unterminated string at %d", start)
}

var twoCharSyms = map[string]bool{"<=": true, ">=": true, "<>": true, "!=": true}

func (l *lexer) lexSymbol() error {
	start := l.pos
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharSyms[two] {
			l.pos += 2
			if two == "!=" {
				two = "<>"
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: start})
			return nil
		}
	}
	switch c := l.src[l.pos]; c {
	case '(', ')', '[', ']', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.':
		l.pos++
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	default:
		return fmt.Errorf("query: unexpected character %q at %d", c, start)
	}
}
