package query

import (
	"testing"

	"streamdb/internal/exec"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// TestPunctuatedWindowQuery runs the slide-28 auction idiom end to end
// through the language: bids accumulate per auction and a group closes
// the moment its end-of-auction punctuation arrives.
func TestPunctuatedWindowQuery(t *testing.T) {
	cat := NewCatalog()
	bids := tuple.NewSchema("Bids",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "auction", Kind: tuple.KindInt},
		tuple.Field{Name: "bid", Kind: tuple.KindFloat},
	)
	cat.Register("Bids", bids)

	mk := func(ts, auction int64, v float64) stream.Element {
		return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(auction), tuple.Float(v)))
	}
	elems := []stream.Element{
		mk(1, 7, 10),
		mk(2, 8, 5),
		mk(3, 7, 30),
		stream.Punct(stream.EndGroupPunct(4, 1, tuple.Int(7))), // auction 7 closes
		mk(5, 8, 9),
	}

	q, err := Parse("select auction, max(bid) as winning from Bids [punctuated] group by auction")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	var results []*tuple.Tuple
	var closedEarly int
	g := exec.NewGraph(func(e stream.Element) {
		if !e.IsPunct() {
			results = append(results, e.Tuple)
			if len(results) == 1 {
				closedEarly = 1
			}
		}
	})
	if err := plan.Build(g, map[string]stream.Source{
		"Bids": stream.FromElements(bids, elems...),
	}); err != nil {
		t.Fatal(err)
	}
	// Process only up to the punctuation first: auction 7 must already
	// be out before end-of-stream.
	g.Pump(4)
	if len(results) != 1 || closedEarly != 1 {
		t.Fatalf("results after punctuation = %d, want 1", len(results))
	}
	if a, _ := results[0].Vals[0].AsInt(); a != 7 {
		t.Errorf("closed auction = %d", a)
	}
	if w, _ := results[0].Vals[1].AsFloat(); w != 30 {
		t.Errorf("winning bid = %v", w)
	}
	// Remaining input + flush emits auction 8.
	g.Run(-1)
	if len(results) != 2 {
		t.Fatalf("final results = %d", len(results))
	}
	if a, _ := results[1].Vals[0].AsInt(); a != 8 {
		t.Errorf("flushed auction = %d", a)
	}
	if w, _ := results[1].Vals[1].AsFloat(); w != 9 {
		t.Errorf("auction 8 winning = %v", w)
	}
}

func TestPunctuatedWindowParse(t *testing.T) {
	q, err := Parse("select count(*) from Bids [punctuated] group by auction")
	if err != nil {
		t.Fatal(err)
	}
	if !q.From[0].HasWindow || q.From[0].Window.String() != "[PUNCTUATED]" {
		t.Errorf("window = %+v", q.From[0].Window)
	}
}
