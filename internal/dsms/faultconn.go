package dsms

// Deterministic fault injection for the session protocol. The chaos
// wrapper sits between the client's framing layer and the real
// net.Conn, so the retry/resume path is exercised under test instead of
// trusted. All faults are driven by a seeded PRNG over the write path
// (the unreliable uplink of the 3-level architecture); the same seed
// and write sequence reproduces the same fault schedule.

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"
)

// FaultConfig selects which faults to inject and how often. Rates are
// per-Write probabilities in [0, 1]; checks are applied in the order
// stall, corrupt, partial, drop.
type FaultConfig struct {
	Seed int64
	// DropRate cuts the connection (the write fails, the socket
	// closes, both directions die).
	DropRate float64
	// PartialRate writes a random prefix of the buffer, then cuts the
	// connection — a mid-frame (even mid-tuple) loss.
	PartialRate float64
	// CorruptRate flips one random byte of the written data.
	CorruptRate float64
	// StallRate sleeps Stall before the write (a write stall long
	// enough trips the sender's write deadline).
	StallRate float64
	Stall     time.Duration
	// KillAfterBytes, when positive, is the mid-frame kill: the write
	// that crosses this cumulative byte offset is truncated exactly at
	// the boundary and the connection dies permanently — the byte-exact
	// simulation of a process killed mid-write, which is how torn
	// frames and torn checkpoint commits are produced under test.
	KillAfterBytes int64
}

// FaultStats counts injected faults.
type FaultStats struct {
	Writes   int64
	Drops    int64
	Partials int64
	Corrupts int64
	Stalls   int64
	Kills    int64 // KillAfterBytes truncations
}

// faultEngine is the shared fault schedule, independent of what the
// bytes are written to: FaultConn drives a net.Conn with it, and
// FaultWriter drives a plain io.Writer (the checkpoint store's
// data-file seam).
type faultEngine struct {
	cfg FaultConfig

	mu      sync.Mutex
	rng     *rand.Rand
	dropped bool
	written int64
	stats   FaultStats
}

func newFaultEngine(cfg FaultConfig) *faultEngine {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &faultEngine{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// write applies the fault schedule to one buffer, handing (possibly
// shortened or corrupted) bytes to emit and closing the sink through
// kill. It returns emit's byte count and the error the caller must
// surface.
func (f *faultEngine) write(b []byte, emit func([]byte) (int, error), kill func()) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dropped {
		return 0, syscall.EPIPE
	}
	f.stats.Writes++
	if k := f.cfg.KillAfterBytes; k > 0 && f.written+int64(len(b)) > k {
		f.stats.Kills++
		f.dropped = true
		keep := int(k - f.written)
		if keep < 0 {
			keep = 0
		}
		n := 0
		if keep > 0 {
			n, _ = emit(b[:keep])
		}
		f.written += int64(n)
		kill()
		return n, syscall.ECONNRESET
	}
	if f.cfg.StallRate > 0 && f.rng.Float64() < f.cfg.StallRate {
		f.stats.Stalls++
		time.Sleep(f.cfg.Stall)
	}
	if f.cfg.CorruptRate > 0 && f.rng.Float64() < f.cfg.CorruptRate && len(b) > 0 {
		f.stats.Corrupts++
		corrupted := make([]byte, len(b))
		copy(corrupted, b)
		corrupted[f.rng.Intn(len(corrupted))] ^= 0xA5
		b = corrupted
	}
	if f.cfg.PartialRate > 0 && f.rng.Float64() < f.cfg.PartialRate && len(b) > 1 {
		f.stats.Partials++
		n, _ := emit(b[:1+f.rng.Intn(len(b)-1)])
		f.dropped = true
		f.written += int64(n)
		kill()
		return n, syscall.ECONNRESET
	}
	if f.cfg.DropRate > 0 && f.rng.Float64() < f.cfg.DropRate {
		f.stats.Drops++
		f.dropped = true
		kill()
		return 0, syscall.ECONNRESET
	}
	n, err := emit(b)
	f.written += int64(n)
	return n, err
}

func (f *faultEngine) snapshot() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// FaultConn wraps a net.Conn, injecting deterministic faults on Write.
// Reads pass through (a cut connection fails both directions).
type FaultConn struct {
	net.Conn
	eng *faultEngine
}

// InjectFaults wraps conn with the given fault schedule.
func InjectFaults(conn net.Conn, cfg FaultConfig) *FaultConn {
	return &FaultConn{Conn: conn, eng: newFaultEngine(cfg)}
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultConn) Stats() FaultStats { return f.eng.snapshot() }

// Write implements net.Conn with fault injection.
func (f *FaultConn) Write(b []byte) (int, error) {
	return f.eng.write(b, f.Conn.Write, func() { f.Conn.Close() })
}

// FaultWriter applies the same fault schedule to a plain io.Writer: the
// seam the checkpoint store exposes for torn-commit tests. A killed or
// dropped writer swallows further writes with EPIPE, exactly like a
// dead socket.
type FaultWriter struct {
	w   io.Writer
	eng *faultEngine
}

// InjectFaultWriter wraps w with the given fault schedule.
func InjectFaultWriter(w io.Writer, cfg FaultConfig) *FaultWriter {
	return &FaultWriter{w: w, eng: newFaultEngine(cfg)}
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultWriter) Stats() FaultStats { return f.eng.snapshot() }

// Write implements io.Writer with fault injection.
func (f *FaultWriter) Write(b []byte) (int, error) {
	return f.eng.write(b, f.w.Write, func() {})
}
