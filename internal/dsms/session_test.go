package dsms

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"testing"
	"time"

	"streamdb/internal/tuple"
)

// testServer starts a SessionServer collecting delivered tuples per
// stream; returns the listener address, a waiter for Serve, and the
// collected map.
func testServer(t *testing.T, streams int, cfg SessionConfig) (addr string, srv *SessionServer, wait func() map[string][]*tuple.Tuple) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv = NewSessionServer(ln, sch, cfg)
	var mu sync.Mutex
	got := map[string][]*tuple.Tuple{}
	done := make(chan error, 1)
	go func() {
		done <- srv.Serve(streams, func(id string, tp *tuple.Tuple) {
			mu.Lock()
			got[id] = append(got[id], tp)
			mu.Unlock()
		})
	}()
	return ln.Addr().String(), srv, func() map[string][]*tuple.Tuple {
		if err := <-done; err != nil {
			t.Fatalf("serve: %v", err)
		}
		mu.Lock()
		defer mu.Unlock()
		return got
	}
}

func mkTuples(n int) []*tuple.Tuple {
	out := make([]*tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.New(int64(i), tuple.Time(int64(i)), tuple.Int(int64(i%7)), tuple.Float(float64(i)))
	}
	return out
}

// encodeAll is the byte-identity fingerprint of a tuple sequence.
func encodeAll(ts []*tuple.Tuple) []byte {
	var buf []byte
	for _, t := range ts {
		buf = tuple.AppendEncode(buf, t)
	}
	return buf
}

func TestSessionBasicRoundTrip(t *testing.T) {
	addr, srv, wait := testServer(t, 1, SessionConfig{})
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID: "s1",
		Dial:     func() (net.Conn, error) { return net.Dial("tcp", addr) },
		AckEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := mkTuples(100)
	for _, tp := range sent {
		if err := w.Send(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := wait()["s1"]
	if len(got) != 100 {
		t.Fatalf("delivered %d tuples, want 100", len(got))
	}
	if !bytes.Equal(encodeAll(got), encodeAll(sent)) {
		t.Error("delivered tuples differ from sent")
	}
	st := srv.Stats()
	if st.Dupes != 0 || st.Reconnects != 0 || st.Completed != 1 {
		t.Errorf("server stats: %+v", st)
	}
	if w.Buffered() != 0 {
		t.Errorf("replay buffer not drained: %d", w.Buffered())
	}
}

func TestSessionResumeAfterDrops(t *testing.T) {
	addr, srv, wait := testServer(t, 1, SessionConfig{})
	var dials int
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID: "s1",
		Dial: func() (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			dials++
			return InjectFaults(c, FaultConfig{Seed: int64(dials), DropRate: 0.05}), nil
		},
		AckEvery:    8,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := mkTuples(500)
	for _, tp := range sent {
		if err := w.Send(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := wait()["s1"]
	if len(got) != len(sent) {
		t.Fatalf("delivered %d tuples, want %d (exactly-once violated)", len(got), len(sent))
	}
	if !bytes.Equal(encodeAll(got), encodeAll(sent)) {
		t.Error("delivered tuples differ from sent (order or content corrupted)")
	}
	ws := w.Stats()
	if ws.Reconnects == 0 {
		t.Error("no reconnects happened; fault injection ineffective")
	}
	if srv.Stats().Reconnects == 0 {
		t.Error("server saw no resumes")
	}
	t.Logf("client: %+v; server: %+v", ws, srv.Stats())
}

func TestSessionResumeAfterCorruptionAndPartials(t *testing.T) {
	addr, _, wait := testServer(t, 1, SessionConfig{})
	var dials int
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID: "s1",
		Dial: func() (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			dials++
			return InjectFaults(c, FaultConfig{
				Seed: int64(100 + dials), CorruptRate: 0.03, PartialRate: 0.02,
			}), nil
		},
		AckEvery:    8,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := mkTuples(400)
	for _, tp := range sent {
		if err := w.Send(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := wait()["s1"]
	if !bytes.Equal(encodeAll(got), encodeAll(sent)) {
		t.Fatalf("delivered %d tuples differing from %d sent", len(got), len(sent))
	}
}

func TestSessionMultiStream(t *testing.T) {
	const streams = 3
	addr, _, wait := testServer(t, streams, SessionConfig{})
	var wg sync.WaitGroup
	sent := make([][]*tuple.Tuple, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var dials int
			w, err := NewReconnectWriter(ReconnectConfig{
				StreamID: fmt.Sprintf("s%d", i),
				Dial: func() (net.Conn, error) {
					c, err := net.Dial("tcp", addr)
					if err != nil {
						return nil, err
					}
					dials++
					return InjectFaults(c, FaultConfig{Seed: int64(i*1000 + dials), DropRate: 0.04}), nil
				},
				AckEvery:    8,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  5 * time.Millisecond,
				Timeout:     2 * time.Second,
				Seed:        int64(i + 1),
			})
			if err != nil {
				t.Error(err)
				return
			}
			sent[i] = mkTuples(200 + 50*i)
			for _, tp := range sent[i] {
				if err := w.Send(tp); err != nil {
					t.Error(err)
					return
				}
			}
			if err := w.Close(); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	got := wait()
	for i := 0; i < streams; i++ {
		id := fmt.Sprintf("s%d", i)
		if !bytes.Equal(encodeAll(got[id]), encodeAll(sent[i])) {
			t.Errorf("stream %s: delivered %d tuples differ from %d sent", id, len(got[id]), len(sent[i]))
		}
	}
}

func TestSessionReplayBufferBounded(t *testing.T) {
	addr, _, wait := testServer(t, 1, SessionConfig{})
	const ackEvery = 8
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID: "s1",
		Dial:     func() (net.Conn, error) { return net.Dial("tcp", addr) },
		AckEvery: ackEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range mkTuples(100) {
		if err := w.Send(tp); err != nil {
			t.Fatal(err)
		}
		if b := w.Buffered(); b > ackEvery {
			t.Fatalf("replay buffer %d exceeds bound %d", b, ackEvery)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wait()
	if w.Stats().MaxBuffered > ackEvery {
		t.Errorf("MaxBuffered %d exceeds bound %d", w.Stats().MaxBuffered, ackEvery)
	}
}

func TestSessionIdleTimeoutDetectsDeadPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewSessionServer(ln, sch, SessionConfig{IdleTimeout: 50 * time.Millisecond})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(1, nil) }()

	// A peer that says HELLO then goes silent: the server must drop it
	// on the idle timeout rather than hold the session handler forever.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	hello := []byte{frameHello, 2, 's', '1'}
	hello = binary.LittleEndian.AppendUint32(hello, crc32.ChecksumIEEE([]byte("s1")))
	conn.Write(hello)
	buf := make([]byte, 16)
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("no HELLOACK: %v", err)
	}
	// The server should close the connection after the idle timeout.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected connection close on idle timeout")
	}
	if time.Since(start) > time.Second {
		t.Fatal("idle timeout did not fire promptly")
	}

	// The session must still be resumable: finish it properly.
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID: "s1",
		Dial:     func() (net.Conn, error) { return net.Dial("tcp", ln.Addr().String()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Send(mkTuples(1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if srv.Stats().Completed != 1 {
		t.Errorf("stats: %+v", srv.Stats())
	}
}

func TestSessionWriterGivesUpWhenServerGone(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listening
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID:    "s1",
		Dial:        func() (net.Conn, error) { return net.Dial("tcp", addr) },
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Send(mkTuples(1)[0]); err == nil {
		t.Fatal("Send succeeded with no server")
	}
}

func TestFaultConnDeterministic(t *testing.T) {
	// The same seed must yield the same fault schedule.
	run := func() (writes, drops int64) {
		srvLn, _ := net.Listen("tcp", "127.0.0.1:0")
		defer srvLn.Close()
		go func() {
			for {
				c, err := srvLn.Accept()
				if err != nil {
					return
				}
				go func(c net.Conn) {
					buf := make([]byte, 4096)
					for {
						if _, err := c.Read(buf); err != nil {
							c.Close()
							return
						}
					}
				}(c)
			}
		}()
		conn, _ := net.Dial("tcp", srvLn.Addr().String())
		fc := InjectFaults(conn, FaultConfig{Seed: 42, DropRate: 0.2})
		payload := bytes.Repeat([]byte{7}, 64)
		for i := 0; i < 50; i++ {
			if _, err := fc.Write(payload); err != nil {
				break
			}
		}
		st := fc.Stats()
		return st.Writes, st.Drops
	}
	w1, d1 := run()
	w2, d2 := run()
	if w1 != w2 || d1 != d2 {
		t.Errorf("fault schedule not deterministic: (%d,%d) vs (%d,%d)", w1, d1, w2, d2)
	}
	if d1 == 0 {
		t.Error("no drops injected at 20% rate over 50 writes")
	}
}
