package exec

// Byte-equivalence matrix for columnar execution: RunOptions.Columnar
// must reproduce the row engine's output byte-for-byte in every lane —
// single-node (native BatchOperator and row-adapter), replicated,
// partial-replicated, fan-out — across batch sizes, with punctuations,
// late tuples, checkpoint barriers, and restore-from-checkpoint in the
// stream. Checkpoints must also interoperate across modes: a cut taken
// by a row run restores into a columnar run and vice versa.

import (
	"fmt"
	"sync"
	"testing"

	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// TestColumnarMatchesRowPipeline drives Select -> Project (both
// BatchOperators) and requires exact output equality with the row
// engine, including replicated lanes where the splitter materializes.
func TestColumnarMatchesRowPipeline(t *testing.T) {
	var elems []stream.Element
	for i := int64(0); i < 1000; i++ {
		elems = append(elems, el(i, i%40))
		if i%100 == 99 {
			elems = append(elems, stream.Punct(stream.ProgressPunct(i, 0, tuple.Time(i))))
		}
	}
	base := pipelineOutputs(t, elems, RunOptions{BatchSize: 1})
	if len(base) == 0 {
		t.Fatal("baseline produced nothing")
	}
	for _, cfg := range []RunOptions{
		{BatchSize: 1, Columnar: true},
		{BatchSize: 7, Columnar: true},
		{BatchSize: 64, Columnar: true},
		{BatchSize: 256, Columnar: true},
		{BatchSize: 64, Parallelism: 4, ForceParallelism: true, Columnar: true},
		{BatchSize: 1, Parallelism: 2, ForceParallelism: true, Columnar: true},
	} {
		got := pipelineOutputs(t, elems, cfg)
		sameSeq(t, fmt.Sprintf("%+v", cfg), got, base)
	}
}

// TestColumnarPaneEquivalence: the GroupBy columnar fold (dense key
// cache, typed update loops) against the serial engine, on the pane
// path and — via DisablePanes — the row-fallback lane, with stragglers
// and punctuations in the stream. Parallel cases exercise column
// batches routed through the partial-replication splitter.
func TestColumnarPaneEquivalence(t *testing.T) {
	elems := paneStream(4000, false)
	for _, panes := range []bool{true, false} {
		label := map[bool]string{true: "panes", false: "legacy"}[panes]
		_, base := runPaneGraph(t, paneGroupBy(t, window.Time(80, 20), []string{"sum", "count", "avg"}, panes), elems, nil)
		if len(base) == 0 {
			t.Fatal("baseline produced nothing")
		}
		cfgs := []RunOptions{
			{BatchSize: 1, Columnar: true},
			{BatchSize: 7, Columnar: true},
			{BatchSize: 64, Columnar: true},
			{BatchSize: 256, Columnar: true},
		}
		if panes {
			cfgs = append(cfgs,
				RunOptions{BatchSize: 64, Parallelism: 4, ForceParallelism: true, Columnar: true},
				RunOptions{BatchSize: 32, Parallelism: 3, ForceParallelism: true, Columnar: true})
		}
		for _, cfg := range cfgs {
			gb := paneGroupBy(t, window.Time(80, 20), []string{"sum", "count", "avg"}, panes)
			_, got := runPaneGraph(t, gb, elems, &cfg)
			sameSeq(t, fmt.Sprintf("%s %+v", label, cfg), got, base)
		}
	}
}

// TestColumnarDeepStragglers: tuples far behind the watermark must take
// the late-side-table path out of the columnar fold exactly as they do
// out of the row fold (single-copy lanes only; see paneStream).
func TestColumnarDeepStragglers(t *testing.T) {
	elems := paneStream(2000, true)
	_, base := runPaneGraph(t, paneGroupBy(t, window.Time(80, 20), []string{"sum", "count"}, true), elems, nil)
	for _, bs := range []int{1, 7, 64} {
		cfg := RunOptions{BatchSize: bs, Columnar: true}
		_, got := runPaneGraph(t, paneGroupBy(t, window.Time(80, 20), []string{"sum", "count"}, true), elems, &cfg)
		sameSeq(t, fmt.Sprintf("columnar bs=%d", bs), got, base)
	}
}

// TestColumnarFanout shards the sink per writer and fans one Select
// output to two Projects, so shared column batches (Retain + WithSel
// views) feed both branches; each branch must match its row-engine
// sequence exactly.
func TestColumnarFanout(t *testing.T) {
	var elems []stream.Element
	for i := int64(0); i < 800; i++ {
		elems = append(elems, el(i, i%40))
		if i%90 == 89 {
			elems = append(elems, stream.Punct(stream.ProgressPunct(i, 0, tuple.Time(i))))
		}
	}
	run := func(columnar bool) map[NodeID][]string {
		// Per-writer sinks run on their writers' goroutines concurrently;
		// the shared result map needs the lock even for distinct keys.
		var mu sync.Mutex
		got := map[NodeID][]string{}
		g := NewGraph(nil)
		src := g.AddSource(stream.FromElements(sch, elems...))
		sel := g.AddOp(mustSelect(t, 10))
		mk := func(name string, factor int64) NodeID {
			outSch := tuple.NewSchema(name,
				tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
				tuple.Field{Name: "v2", Kind: tuple.KindInt},
			)
			e, err := expr.NewBin(expr.OpMul, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(factor)))
			if err != nil {
				t.Fatal(err)
			}
			proj, err := ops.NewProject(name, outSch, []expr.Expr{expr.MustColumn(sch, "time"), e})
			if err != nil {
				t.Fatal(err)
			}
			id := g.AddOp(proj)
			if err := g.Connect(sel, id, 0); err != nil {
				t.Fatal(err)
			}
			if err := g.ConnectOut(id); err != nil {
				t.Fatal(err)
			}
			return id
		}
		mk("p2", 2)
		mk("p3", 3)
		if err := g.ConnectSource(src, sel, 0); err != nil {
			t.Fatal(err)
		}
		g.RunWith(-1, RunOptions{
			BatchSize: 32,
			Columnar:  columnar,
			SinkPerWriter: func(id NodeID) Sink {
				return func(e stream.Element) {
					mu.Lock()
					got[id] = append(got[id], e.String())
					mu.Unlock()
				}
			},
		})
		return got
	}
	base := run(false)
	got := run(true)
	if len(base) != 2 || len(got) != 2 {
		t.Fatalf("expected 2 sharded sinks, got %d and %d", len(base), len(got))
	}
	for id, want := range base {
		sameSeq(t, fmt.Sprintf("branch %d", id), got[id], want)
	}
}

// TestColumnarCheckpointResume is the crash drill with column batches in
// flight, plus cross-mode restores: the cut is mode-agnostic.
func TestColumnarCheckpointResume(t *testing.T) {
	elems := paneStream(3000, false)
	var base []string
	g := ckptPaneGraph(t, elems, func(e stream.Element) { base = append(base, fmtElem(e)) })
	g.Run(-1)
	if len(base) == 0 {
		t.Fatal("baseline produced nothing")
	}

	col := RunOptions{BatchSize: 32, Columnar: true}
	row := RunOptions{BatchSize: 32}
	par := RunOptions{BatchSize: 32, Parallelism: 3, ForceParallelism: true, Columnar: true}
	for _, tc := range []struct {
		label         string
		crash, resume RunOptions
	}{
		{"columnar/columnar", col, col},
		{"columnar/row", col, row},
		{"row/columnar", row, col},
		{"parallel columnar", par, par},
	} {
		store := ckptStore(t)
		first, commits := runWithCkpt(t, elems, 1100, tc.crash, store, 149, nil)
		if commits == 0 {
			t.Fatalf("%s: crash run committed no epochs", tc.label)
		}
		c, err := store.Latest()
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			t.Fatalf("%s: no checkpoint recovered", tc.label)
		}
		if int(c.OutSeq) > len(first) {
			t.Fatalf("%s: OutSeq %d beyond delivered %d", tc.label, c.OutSeq, len(first))
		}
		second, _ := runWithCkpt(t, elems, -1, tc.resume, store, 149, c)
		got := append(append([]string{}, first[:c.OutSeq]...), second...)
		sameSeq(t, tc.label+" stitched", got, base)
	}
}

// colBatchSource replays pre-built column batches through the
// stream.ColSource contract, standing in for a columnar transport.
type colBatchSource struct {
	schema  *tuple.Schema
	batches []*stream.Batch
	rows    []stream.Element // row view for the restore fast-forward
	at      int
}

func (c *colBatchSource) Schema() *tuple.Schema { return c.schema }
func (c *colBatchSource) Next() (stream.Element, bool) {
	if c.at >= len(c.rows) {
		return stream.Element{}, false
	}
	e := c.rows[c.at]
	c.at++
	return e, true
}
func (c *colBatchSource) NextColBatch(max int) (*stream.Batch, bool) {
	if len(c.batches) == 0 {
		return nil, false
	}
	b := c.batches[0]
	c.batches = c.batches[1:]
	return b, len(c.batches) > 0
}

// TestColSourceFeedsGraph: batches delivered by a ColSource flow into
// the graph identically to the same rows from a bulk source.
func TestColSourceFeedsGraph(t *testing.T) {
	var elems []stream.Element
	for i := int64(0); i < 500; i++ {
		elems = append(elems, el(i, i%40))
	}
	base := pipelineOutputs(t, elems, RunOptions{BatchSize: 1})

	pool := stream.NewColPool(sch, 64)
	var batches []*stream.Batch
	cur := pool.Get()
	for _, e := range elems {
		cur.AppendRow(e.Tuple)
		if cur.Rows() == 64 {
			batches = append(batches, cur)
			cur = pool.Get()
		}
	}
	if cur.Rows() > 0 {
		batches = append(batches, cur)
	} else {
		cur.Release()
	}
	var got []string
	g := NewGraph(func(e stream.Element) { got = append(got, e.String()) })
	src := g.AddSource(&colBatchSource{schema: sch, batches: batches, rows: elems})
	sel := g.AddOp(mustSelect(t, 10))
	outSch := tuple.NewSchema("P",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "v2", Kind: tuple.KindInt},
	)
	dbl, err := expr.NewBin(expr.OpMul, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(2)))
	if err != nil {
		t.Fatal(err)
	}
	proj, err := ops.NewProject("proj", outSch, []expr.Expr{expr.MustColumn(sch, "time"), dbl})
	if err != nil {
		t.Fatal(err)
	}
	pr := g.AddOp(proj)
	if err := g.ConnectSource(src, sel, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(sel, pr, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(pr); err != nil {
		t.Fatal(err)
	}
	g.RunWith(-1, RunOptions{BatchSize: 64, Columnar: true})
	sameSeq(t, "colsource", got, base)
}
