// Batched concurrent execution: the throughput-oriented engine mode.
//
// Edges between operators carry micro-batches ([]stream.Element) instead
// of single elements, so the per-element cost of a channel transfer, a
// message copy and a sink handoff is amortized over BatchSize elements
// (the standard cure in modern stream engines; cf. arXiv:2008.00842).
// Three rules keep batching semantically invisible:
//
//   - order within an edge is preserved (a batch is a contiguous run of
//     the element stream),
//   - a punctuation is never held back: appending one to an open batch
//     flushes it immediately, so a downstream window flush can never
//     observe a punctuation that overtook data (or wait on data parked
//     in an upstream buffer),
//   - end-of-stream flushes every open buffer before edges close.
//
// Operators still see one element at a time through ops.Operator.Push —
// all existing operators work unmodified. Stateless operators that
// implement ops.Replicable can additionally be replicated N-ways: a
// splitter round-robins input batches (tagged with sequence numbers)
// across N clones and a merger re-emits their outputs in sequence-number
// order, which restores exactly the arrival order — and therefore the
// ordering-attribute order — of the unreplicated run.
//
// Graph outputs are merged through a single consumer goroutine fed by
// per-writer batches (no global lock on the emit path), so the Sink
// callback is always invoked serially. RunOptions.SinkPerWriter opts
// into sharded sinks instead: each output-writing node gets its own
// sink, called only from that node's output goroutine.
package exec

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"streamdb/internal/ckpt"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
)

// Engine tuning defaults for RunWith.
const (
	// DefaultBatchSize is the target elements per edge batch.
	DefaultBatchSize = 64
	// DefaultChanCap is the per-edge channel capacity in batches.
	DefaultChanCap = 16
)

// RunOptions tunes the concurrent engine.
type RunOptions struct {
	// BatchSize is the target number of elements per edge batch;
	// 1 reproduces element-at-a-time execution, <= 0 uses
	// DefaultBatchSize.
	BatchSize int
	// Parallelism replicates each single-input ops.Replicable operator
	// this many ways with an order-restoring merge, and each eligible
	// ops.PartialAggregable operator as partial replicas plus a final
	// combiner; <= 1 disables replication. The effective width is capped
	// at runtime.GOMAXPROCS(0) — replication beyond the schedulable cores
	// only adds splitter/merger overhead (measured ~2x slower at
	// replicas=2 on a single core) — unless ForceParallelism is set. The
	// width actually used is recorded in each node's NodeStats.Replicas.
	Parallelism int
	// ForceParallelism bypasses the GOMAXPROCS cap on Parallelism, for
	// tests and experiments that must exercise real replication
	// regardless of the host's core count.
	ForceParallelism bool
	// PartitionJoins routes eligible two-input ops.KeyPartitionable
	// nodes (joins) through the hash-split router even at Parallelism 1.
	// At Parallelism > 1 the router engages automatically; forcing it at
	// width 1 exists for determinism tests that compare the routed path
	// against the serial engine without replication in play.
	PartitionJoins bool
	// ChanCap is the per-edge channel capacity in batches; <= 0 uses
	// DefaultChanCap.
	ChanCap int
	// SinkPerWriter, when set, shards graph output: every node with an
	// edge to the graph output gets its own sink from this factory,
	// invoked serially from that node's output goroutine, and the
	// graph-level sink is bypassed. When nil, all output is merged
	// through one consumer goroutine into the graph sink (which
	// therefore needs no internal locking either).
	SinkPerWriter func(NodeID) Sink
	// Checkpoint enables barrier-aligned durable checkpoints (see
	// exec/checkpoint.go). Incompatible with SinkPerWriter — sharded
	// sinks have no single output cut — in which case checkpointing is
	// disabled and OnCommit reports the conflict once.
	Checkpoint *CheckpointConfig
	// Restore plays a checkpoint taken by a previous RunWith of the
	// same graph shape and the same effective Parallelism /
	// PartitionJoins settings back into the operators before any
	// element flows, and fast-forwards each source past the elements
	// the checkpointed run consumed.
	Restore *ckpt.Checkpoint
	// Columnar moves data tuples through the graph as column batches
	// (see columnar.go): sources transpose (or decode, for
	// stream.ColSource) into stream.Batch vectors, ops.BatchOperator
	// nodes consume them natively, and row⇄column adapters bridge every
	// other boundary. Punctuations and barriers always stay on the row
	// path. Results are element-for-element identical to the row engine;
	// checkpoints interoperate both ways.
	Columnar bool
	// Adapt enables the feedback-driven adaptive controller (see
	// adapt.go): per-edge micro-batch targets, live growth/shrink of
	// replica sets, and pre-emptive semantic shedding, all steered by
	// queue-occupancy feedback on a fixed cadence. Mutually exclusive
	// with Checkpoint and Restore, which pin the lane layout for the
	// whole run — when either is set the controller is disabled.
	Adapt *AdaptConfig
	// ColSink, when set with Columnar, receives column batches that
	// reach the graph output without leaving the batch lane, instead of
	// having them materialized row-by-row into the Sink. Batches are
	// delivered serially from the merged output consumer, interleaved in
	// stream order with row elements (punctuations, aggregate records,
	// ...), which still go to the Sink. The batch is valid only for the
	// duration of the call: the engine releases it afterwards, so a sink
	// that keeps it must Retain. Ignored when SinkPerWriter is set (the
	// sharded sinks are row-shaped).
	ColSink func(*stream.Batch)
}

// sinkMsg is one unit of merged graph output: a row batch destined for
// the Sink, or a column batch destined for ColSink (the reference
// travels with the message; the consumer releases it).
type sinkMsg struct {
	elems []stream.Element
	col   *stream.Batch
}

// batchMsg is one edge transfer: either a row batch (elems) or a column
// batch (col), never both. Column batches carry data tuples only.
type batchMsg struct {
	port  int
	elems []stream.Element
	col   *stream.Batch
}

// concRun carries the shared state of one RunWith invocation.
type concRun struct {
	g       *Graph
	opts    RunOptions
	pool    *stream.BatchPool
	chans   []chan batchMsg
	pending []int64 // queued elements per node, for MaxQueue sampling
	maxQ    []int64
	maxMem  []int64
	memTick []int64 // per-node message count, for strided MemSize polls
	writers []int
	closeMu sync.Mutex
	sinkCh  chan sinkMsg // nil when SinkPerWriter is set
	colSink func(*stream.Batch)

	// Checkpointing state: ctl coordinates barrier epochs (nil when
	// disabled), inw is the initial writer count per node (writers[]
	// decays via closeOne, but barrier alignment needs the full count),
	// outW counts nodes writing the graph output, restore is the
	// checkpoint being played back (nil for a fresh run).
	ctl     *ckptCtl
	inw     []int
	outW    int
	restore *ckpt.Checkpoint

	// adapt is the adaptive controller's shared state (nil on static
	// runs). Lanes spawn adapt.maxP workers and route data over the
	// active prefix the controller maintains.
	adapt *adaptState
}

// poolWidth is the worker-pool size parallel lanes spawn: the adaptive
// ceiling, or the static Parallelism.
func (r *concRun) poolWidth() int {
	if r.adapt != nil {
		return r.adapt.maxP
	}
	return r.opts.Parallelism
}

// activeWidth is the replica count splitters route data over right now.
func (r *concRun) activeWidth(id NodeID) int {
	if r.adapt != nil {
		return int(atomic.LoadInt32(&r.adapt.actP[id]))
	}
	return r.opts.Parallelism
}

func atomicMax(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// RunWith executes the graph concurrently — one goroutine per operator
// (plus replicas), batched channels between them — with the given
// options. Returns when all sources are exhausted and the pipeline has
// flushed. maxElements bounds the elements drawn per source (< 0 =
// unbounded). Results are element-for-element identical to
// RunConcurrent at any batch size; only interleaving across independent
// branches varies, as it already does between concurrent runs.
func (g *Graph) RunWith(maxElements int64, opts RunOptions) {
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if opts.ChanCap <= 0 {
		opts.ChanCap = DefaultChanCap
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	if !opts.ForceParallelism {
		if mp := runtime.GOMAXPROCS(0); opts.Parallelism > mp {
			opts.Parallelism = mp
		}
	}
	r := &concRun{
		g:       g,
		opts:    opts,
		pool:    stream.NewBatchPool(opts.BatchSize),
		chans:   make([]chan batchMsg, len(g.nodes)),
		pending: make([]int64, len(g.nodes)),
		maxQ:    make([]int64, len(g.nodes)),
		maxMem:  make([]int64, len(g.nodes)),
		memTick: make([]int64, len(g.nodes)),
		writers: make([]int, len(g.nodes)),
	}
	if opts.Adapt != nil && opts.Checkpoint == nil && opts.Restore == nil {
		maxP := opts.Adapt.MaxParallelism
		if maxP <= 0 {
			maxP = runtime.GOMAXPROCS(0)
		}
		if maxP < opts.Parallelism {
			maxP = opts.Parallelism
		}
		r.adapt = newAdaptState(g, opts, maxP)
	}
	for i := range r.chans {
		r.chans[i] = make(chan batchMsg, opts.ChanCap)
	}
	// Count writers per node so channels close exactly once.
	for _, s := range g.sources {
		for _, ed := range s.out {
			r.writers[ed.to]++
		}
	}
	for _, n := range g.nodes {
		for _, ed := range n.out {
			if ed.to >= 0 {
				r.writers[ed.to]++
			}
		}
	}
	r.inw = append([]int(nil), r.writers...)
	for _, n := range g.nodes {
		for _, ed := range n.out {
			if ed.to < 0 {
				r.outW++
				break
			}
		}
	}

	r.restore = opts.Restore
	if r.restore != nil {
		if err := r.validateRestore(); err != nil {
			g.failMu.Lock()
			g.failed = append(g.failed, NodeFailure{Node: -1, Op: "checkpoint-restore", Panic: err})
			g.failMu.Unlock()
			return
		}
	}
	if cfg := opts.Checkpoint; cfg != nil && cfg.Store != nil && cfg.Every > 0 {
		if opts.SinkPerWriter != nil {
			if cfg.OnCommit != nil {
				cfg.OnCommit(0, fmt.Errorf("exec: checkpointing is incompatible with SinkPerWriter (no single output cut)"))
			}
		} else {
			var first int64
			if r.restore != nil {
				first = r.restore.Epoch
			}
			r.ctl = newCkptCtl(cfg, map[string]uint64{
				"par": uint64(opts.Parallelism),
				"pj":  boolMeta(opts.PartitionJoins),
			}, first)
			g.failHook = func() { r.ctl.shutdown(fmt.Errorf("exec: node failure aborted the checkpoint epoch")) }
			defer func() { g.failHook = nil }()
		}
	}

	var sinkWG sync.WaitGroup
	if opts.SinkPerWriter == nil {
		r.sinkCh = make(chan sinkMsg, 2*len(g.nodes)+4)
		r.colSink = opts.ColSink
		sinkWG.Add(1)
		go func() {
			defer sinkWG.Done()
			var delivered int64
			sinkBars := 0
			for m := range r.sinkCh {
				if m.col != nil {
					delivered += int64(m.col.N())
					r.colSink(m.col)
					m.col.Release()
					continue
				}
				b := m.elems
				for _, e := range b {
					if e.IsBarrier() {
						// Engine-internal: count the cut, never deliver.
						sinkBars++
						if sinkBars == r.outW {
							sinkBars = 0
							if r.ctl != nil {
								r.ctl.sinkCut(e.Punct.Barrier, delivered)
							}
						}
						continue
					}
					delivered++
					g.sink(e)
				}
				r.pool.Put(b)
			}
		}()
	}

	needSections := 0
	var wg sync.WaitGroup
	fbStart := make([]int64, len(g.nodes))
	// The adaptive pool ceiling also gates lane eligibility: with the
	// controller on, scalable lanes engage even at Parallelism 1 so the
	// controller can grow them later (they start at width 1 and stay
	// byte-identical to the static engine).
	scaleW := opts.Parallelism
	if r.adapt != nil {
		scaleW = r.adapt.maxP
	}
	for id := range g.nodes {
		n := g.nodes[id]
		wg.Add(1)
		n.stats.Replicas = 1
		n.stats.Routed = nil
		n.stats.Batches = 0
		n.stats.RowFallbacks = 0
		n.stats.BatchTarget = 0
		n.stats.ShedRate = 0
		n.stats.Rescales = 0
		if cf, ok := n.op.(colFallbacker); ok {
			fbStart[id] = cf.ColFallbacks()
		}
		if (opts.Parallelism > 1 || opts.PartitionJoins || scaleW > 1) && n.op.NumInputs() == 2 && !n.detached {
			if kp, ok := n.op.(ops.KeyPartitionable); ok && kp.CanPartition() {
				n.stats.Replicas = opts.Parallelism
				n.stats.Routed = make([]int64, r.poolWidth())
				needSections += opts.Parallelism + 1 // P replicas + splitter queues
				if r.adapt != nil {
					r.adapt.kind[id] = laneKeyPart
					_, r.adapt.rescaler[id] = n.op.(ops.StateRescaler)
				}
				if opts.Columnar {
					if cp, ok := n.op.(ops.ColPartitionable); ok {
						go r.runKeyPartitionedCol(NodeID(id), n, cp, &wg)
						continue
					}
				}
				go r.runKeyPartitioned(NodeID(id), n, kp, &wg)
				continue
			}
		}
		if scaleW > 1 && n.op.NumInputs() == 1 && !n.detached {
			if pa, ok := n.op.(ops.PartialAggregable); ok && pa.CanPartial() {
				n.stats.Replicas = opts.Parallelism
				needSections += opts.Parallelism + 2 // P replicas + combiner + merge queues
				if r.adapt != nil {
					r.adapt.kind[id] = lanePartial
				}
				go r.runPartialReplicated(NodeID(id), n, pa, &wg)
				continue
			}
			if rep, ok := n.op.(ops.Replicable); ok {
				n.stats.Replicas = opts.Parallelism
				if r.adapt != nil {
					r.adapt.kind[id] = laneRepl
				}
				// Stateless: no sections, the barrier just flows through.
				go r.runReplicated(NodeID(id), n, rep, &wg)
				continue
			}
		}
		needSections++
		go r.runNode(NodeID(id), n, &wg)
	}
	if r.ctl != nil {
		r.ctl.needSections = needSections
		r.ctl.needSink = r.outW
	}
	if r.adapt != nil {
		r.adapt.start(r)
	}
	for i, s := range g.sources {
		wg.Add(1)
		go r.runSource(i, s, maxElements, &wg)
	}
	wg.Wait()
	if r.adapt != nil {
		r.adapt.stop()
	}
	if r.sinkCh != nil {
		close(r.sinkCh)
		sinkWG.Wait()
	}
	// Fold the sampled per-run maxima into the persistent node stats,
	// plus each operator's own columnar-plan fallbacks (partition
	// replicas fold theirs into the parent at Flush, so the delta over
	// this run covers every lane).
	for i, n := range g.nodes {
		if q := int(r.maxQ[i]); q > n.stats.MaxQueue {
			n.stats.MaxQueue = q
		}
		if m := int(r.maxMem[i]); m > n.stats.MaxMemory {
			n.stats.MaxMemory = m
		}
		if cf, ok := n.op.(colFallbacker); ok {
			n.stats.RowFallbacks += cf.ColFallbacks() - fbStart[i]
		}
	}
}

// colFallbacker is implemented by operators that count how many
// columnar batches/spans their own plan rerouted through the row path
// (ops.WindowJoin); the engine surfaces the per-run delta in
// NodeStats.RowFallbacks.
type colFallbacker interface{ ColFallbacks() int64 }

// sendTo delivers one batch to a node's input channel, sampling the
// queue depth (in elements) for MaxQueue.
func (r *concRun) sendTo(to NodeID, port int, b []stream.Element) {
	q := atomic.AddInt64(&r.pending[to], int64(len(b)))
	atomicMax(&r.maxQ[to], q)
	r.chans[to] <- batchMsg{port: port, elems: b}
}

func (r *concRun) closeOne(id NodeID) {
	r.closeMu.Lock()
	r.writers[id]--
	if r.writers[id] == 0 {
		close(r.chans[id])
	}
	r.closeMu.Unlock()
}

func (r *concRun) closeDownstream(edges []edge) {
	for _, ed := range edges {
		if ed.to >= 0 {
			r.closeOne(ed.to)
		}
	}
}

// memStride bounds how often an operator's MemSize is polled on the
// data path. MemSize can be O(live state) — GroupBy walks every open
// pane and group — so polling it per message puts state-proportional
// work on the hot loop; the high-water mark only needs sampling.
const memStride = 64

func (r *concRun) sampleMem(id NodeID, op ops.Operator) {
	if atomic.AddInt64(&r.memTick[id], 1)%memStride != 1 {
		return
	}
	atomicMax(&r.maxMem[id], int64(op.MemSize()))
}

// sampleMemNow polls unconditionally — used off the hot path (flush),
// where state is at its post-run peak and must be recorded.
func (r *concRun) sampleMemNow(id NodeID, op ops.Operator) {
	atomicMax(&r.maxMem[id], int64(op.MemSize()))
}

// edgeWriter accumulates one producer's output into pooled batches and
// fans completed batches out to the producer's edges. It is owned by a
// single goroutine.
type edgeWriter struct {
	r     *concRun
	edges []edge
	sink  Sink // per-writer sink for ed.to < 0; nil = merged sink channel
	buf   []stream.Element
	size  int
	// tgt, when non-nil, is the adaptive controller's batch-target slot
	// for this producer; size re-reads it at flush boundaries, so the
	// per-element append path pays nothing for adaptivity.
	tgt *int64
}

func (r *concRun) newEdgeWriter(edges []edge, owner NodeID) *edgeWriter {
	w := &edgeWriter{r: r, edges: edges, size: r.opts.BatchSize, buf: r.pool.Get()}
	if r.adapt != nil && owner >= 0 {
		w.tgt = &r.adapt.batchTgt[owner]
		w.size = int(atomic.LoadInt64(w.tgt))
	}
	if r.opts.SinkPerWriter != nil {
		for _, ed := range edges {
			if ed.to < 0 {
				w.sink = r.opts.SinkPerWriter(owner)
				break
			}
		}
	}
	return w
}

// add appends one element, flushing on a full batch and immediately on
// punctuation (a punctuation must never wait in a buffer: liveness of
// downstream windows depends on its progress promise arriving).
func (w *edgeWriter) add(e stream.Element) {
	if len(w.edges) == 0 {
		return // unconnected output: discard, as the unbatched engine did
	}
	w.buf = append(w.buf, e)
	if e.IsPunct() || len(w.buf) >= w.size {
		w.flush()
	}
}

// flush hands the open batch to every edge. All but the last edge
// receive a copy; the last takes ownership (consumers recycle batches).
func (w *edgeWriter) flush() {
	if len(w.buf) == 0 {
		return
	}
	b := w.buf
	w.buf = w.r.pool.Get()
	last := len(w.edges) - 1
	for i, ed := range w.edges {
		out := b
		if i < last {
			out = append(w.r.pool.Get(), b...)
		}
		if ed.to < 0 {
			if w.sink != nil {
				for _, e := range out {
					w.sink(e)
				}
				w.r.pool.Put(out)
			} else {
				w.r.sinkCh <- sinkMsg{elems: out}
			}
		} else {
			w.r.sendTo(ed.to, ed.port, out)
		}
	}
	if w.tgt != nil {
		w.size = int(atomic.LoadInt64(w.tgt))
	}
}

// runNode is the per-operator goroutine: drain input batches, push
// element-wise through the operator, re-batch outputs. Panic isolation
// matches the unbatched engine: a crashed operator keeps draining its
// input (so upstream writers never block on a dead consumer) and still
// closes its downstream edges.
func (r *concRun) runNode(id NodeID, n *node, wg *sync.WaitGroup) {
	defer wg.Done()
	r.restoreOp(r.nodeName(id), n.op)
	w := r.newEdgeWriter(n.out, id)
	emit := func(out stream.Element) {
		n.stats.Out++
		w.add(out)
	}
	emitB := func(b *stream.Batch) {
		n.stats.Out += int64(b.N())
		w.addBatch(b)
	}
	bop, isBatchOp := n.op.(ops.BatchOperator)
	crashed := n.detached
	bars := 0
	pushCol := func(m batchMsg) (ok bool) {
		defer func() {
			if rec := recover(); rec != nil {
				r.g.recordPanic(id, n, rec)
				ok = false
			}
		}()
		n.stats.Batches++
		if isBatchOp {
			bop.ProcessBatch(m.port, m.col, emitB, emit)
			return true
		}
		// Row-only operator: materialize and replay element-wise.
		n.stats.RowFallbacks++
		rows := m.col.AppendRows(r.pool.Get())
		m.col.Release()
		for _, e := range rows {
			n.op.Push(m.port, e, emit)
		}
		r.pool.Put(rows)
		return true
	}
	pushBatch := func(m batchMsg) (ok bool) {
		defer func() {
			if rec := recover(); rec != nil {
				r.g.recordPanic(id, n, rec)
				ok = false
			}
		}()
		for _, e := range m.elems {
			if e.IsBarrier() {
				// Engine-level: never enters the operator. Aligned when
				// every input writer's barrier has arrived; snapshot at
				// that exact position and forward one barrier.
				bars++
				if bars == r.inw[id] {
					bars = 0
					if r.ctl != nil {
						r.ctl.addSnap(e.Punct.Barrier, r.nodeName(id), n.op)
					}
					w.add(e)
				}
				continue
			}
			n.op.Push(m.port, e, emit)
		}
		return true
	}
	for m := range r.chans[id] {
		if m.col != nil {
			// Column batches carry data only: no barrier bookkeeping.
			atomic.AddInt64(&r.pending[id], -int64(m.col.N()))
			if crashed {
				m.col.Release()
				continue
			}
			n.stats.In += int64(m.col.N())
			if !pushCol(m) {
				crashed = true
			}
			r.sampleMem(id, n.op)
			continue
		}
		atomic.AddInt64(&r.pending[id], -int64(len(m.elems)))
		if crashed {
			// Discard data, but keep the barrier protocol alive: a node
			// detached by a previous run must still align and forward
			// barriers or the epoch would stall.
			for _, e := range m.elems {
				if e.IsBarrier() {
					bars++
					if bars == r.inw[id] {
						bars = 0
						if r.ctl != nil {
							r.ctl.addSnap(e.Punct.Barrier, r.nodeName(id), n.op)
						}
						w.add(e)
					}
				}
			}
			r.pool.Put(m.elems)
			continue
		}
		n.stats.In += int64(len(m.elems))
		if !pushBatch(m) {
			crashed = true
		}
		r.pool.Put(m.elems)
		r.sampleMem(id, n.op)
	}
	if !crashed {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					r.g.recordPanic(id, n, rec)
				}
			}()
			n.op.Flush(emit)
		}()
		r.sampleMemNow(id, n.op)
	}
	w.flush()
	r.closeDownstream(n.out)
}

// repTask is one sequence-numbered unit of replicated work.
type repTask struct {
	seq   uint64
	port  int
	elems []stream.Element
}

// runReplicated executes one Replicable node as P clones with an
// order-restoring merge: a splitter tags input batches with sequence
// numbers and round-robins them over P workers; each worker pushes its
// batches through a private clone; the merger re-emits output batches
// in sequence order, restoring the exact output order of the
// unreplicated run. Workers always report a result batch per task (even
// empty, even after a crash), so the merge sequence never stalls.
func (r *concRun) runReplicated(id NodeID, n *node, rep ops.Replicable, wg *sync.WaitGroup) {
	defer wg.Done()
	p := r.poolWidth()
	workCh := make([]chan repTask, p)
	for i := range workCh {
		workCh[i] = make(chan repTask, 2)
	}
	mergeCh := make(chan repTask, 2*p)
	var crashed atomic.Bool
	var totalSeq atomic.Uint64

	var workWG sync.WaitGroup
	for k := 0; k < p; k++ {
		workWG.Add(1)
		go func(k int) {
			defer workWG.Done()
			op := rep.Clone()
			process := func(t repTask) (out []stream.Element) {
				out = r.pool.Get()
				if crashed.Load() {
					return out // node detached: discard input
				}
				defer func() {
					if rec := recover(); rec != nil {
						r.g.recordPanic(id, n, rec)
						crashed.Store(true)
					}
				}()
				atomic.AddInt64(&n.stats.In, int64(len(t.elems)))
				for _, e := range t.elems {
					if e.IsBarrier() {
						// Stateless lane: nothing to snapshot; the barrier
						// rides the sequence-ordered merge to emerge in
						// exactly its input position.
						out = append(out, e)
						continue
					}
					op.Push(t.port, e, func(o stream.Element) {
						out = append(out, o)
					})
				}
				return out
			}
			for t := range workCh[k] {
				out := process(t)
				r.pool.Put(t.elems)
				mergeCh <- repTask{seq: t.seq, elems: out}
				r.sampleMem(id, op)
			}
			// Flush the clone. Replicable operators are stateless, so
			// this is expected to emit nothing, but any output is still
			// collected and sequenced after all input batches.
			fout := r.pool.Get()
			if !crashed.Load() {
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							r.g.recordPanic(id, n, rec)
							crashed.Store(true)
						}
					}()
					op.Flush(func(o stream.Element) { fout = append(fout, o) })
				}()
			}
			mergeCh <- repTask{seq: totalSeq.Load() + uint64(k), elems: fout}
		}(k)
	}
	go func() {
		workWG.Wait()
		close(mergeCh)
	}()

	// Splitter: round-robin input batches over the workers. Barriers
	// are aligned here — one arrives per input writer (always a batch's
	// last element, since punctuations flush batches) and exactly one
	// continues into the round-robin stream.
	go func() {
		var seq uint64
		k := 0
		bars := 0
		act := r.activeWidth(id)
		for m := range r.chans[id] {
			if r.adapt != nil {
				// Stateless clones: the active set may change at any batch
				// boundary — the sequence merge restores order regardless.
				if na := int(atomic.LoadInt32(&r.adapt.actP[id])); na != act {
					act = na
					if k >= act {
						k = 0
					}
				}
			}
			if m.col != nil {
				// Mixed row/column output would break the sequence merge;
				// this lane stays row-only.
				atomic.AddInt64(&r.pending[id], -int64(m.col.N()))
				n.stats.Batches++
				n.stats.RowFallbacks++
				m = r.materialize(m)
			} else {
				atomic.AddInt64(&r.pending[id], -int64(len(m.elems)))
			}
			var bar stream.Element
			if l := len(m.elems); l > 0 && m.elems[l-1].IsBarrier() {
				bar = m.elems[l-1]
				m.elems = m.elems[:l-1]
			}
			if len(m.elems) > 0 {
				workCh[k] <- repTask{seq: seq, port: m.port, elems: m.elems}
				seq++
				k = (k + 1) % act
			} else {
				r.pool.Put(m.elems)
			}
			if bar.Punct != nil {
				bars++
				if bars == r.inw[id] {
					bars = 0
					workCh[k] <- repTask{seq: seq, port: m.port, elems: append(r.pool.Get(), bar)}
					seq++
					k = (k + 1) % act
				}
			}
		}
		totalSeq.Store(seq) // ordered before close: workers read it after range ends
		for _, c := range workCh {
			close(c)
		}
	}()

	// Merger: restore sequence order and re-batch downstream.
	w := r.newEdgeWriter(n.out, id)
	deliver := func(b []stream.Element) {
		for _, e := range b {
			if !e.IsBarrier() {
				n.stats.Out++
			}
			w.add(e)
		}
		r.pool.Put(b)
	}
	held := make(map[uint64][]stream.Element)
	var next uint64
	for t := range mergeCh {
		if t.seq != next {
			held[t.seq] = t.elems
			continue
		}
		deliver(t.elems)
		next++
		for {
			b, ok := held[next]
			if !ok {
				break
			}
			delete(held, next)
			deliver(b)
			next++
		}
	}
	// Every sequence number is reported exactly once, so nothing is
	// left held; be defensive anyway and drain in order.
	for len(held) > 0 {
		b, ok := held[next]
		if !ok {
			break
		}
		delete(held, next)
		deliver(b)
		next++
	}
	w.flush()
	r.closeDownstream(n.out)
}

// partMsg carries one partial replica's output batch to the merger;
// elems == nil marks the replica finished (its flush already sent).
type partMsg struct {
	worker int
	elems  []stream.Element
}

// runPartialReplicated executes one PartialAggregable node as P partial
// replicas feeding a final combiner — the two-level aggregation split
// (slide 37) as intra-operator parallelism. A splitter round-robins
// tuple batches across the replicas but broadcasts punctuations to all
// of them (a punctuation parked on one replica would stall every other
// replica's watermark). Each replica emits partial records plus progress
// punctuations; because each replica's output is nondecreasing in
// timestamp, the merger can release, whenever the minimum across the
// replicas' watermarks advances to M, every queued record with Ts <= M
// (in replica order) followed by one synthesized punctuation at M. The
// combiner then finalizes exactly the windows the single-copy operator
// would have emitted by time M, in the same order.
func (r *concRun) runPartialReplicated(id NodeID, n *node, pa ops.PartialAggregable, wg *sync.WaitGroup) {
	defer wg.Done()
	p := r.poolWidth()
	workCh := make([]chan batchMsg, p)
	for i := range workCh {
		workCh[i] = make(chan batchMsg, 2)
	}
	partCh := make(chan partMsg, 2*p)
	var crashed atomic.Bool

	var workWG sync.WaitGroup
	for k := 0; k < p; k++ {
		workWG.Add(1)
		go func(k int) {
			defer workWG.Done()
			op := pa.ClonePartial()
			r.restoreOp(repName(id, k), op)
			bop, isBatchOp := op.(ops.BatchOperator)
			process := func(t batchMsg) (out []stream.Element) {
				out = r.pool.Get()
				if crashed.Load() {
					if t.col != nil {
						t.col.Release()
					}
					return out // node detached: discard input
				}
				defer func() {
					if rec := recover(); rec != nil {
						r.g.recordPanic(id, n, rec)
						crashed.Store(true)
					}
				}()
				emit := func(o stream.Element) {
					out = append(out, o)
				}
				if t.col != nil {
					atomic.AddInt64(&n.stats.In, int64(t.col.N()))
					atomic.AddInt64(&n.stats.Batches, 1)
					if isBatchOp {
						bop.ProcessBatch(t.port, t.col, func(ob *stream.Batch) {
							// Replica output feeds the row-shaped merge.
							out = ob.AppendRows(out)
							ob.Release()
						}, emit)
						return out
					}
					atomic.AddInt64(&n.stats.RowFallbacks, 1)
					rows := t.col.AppendRows(r.pool.Get())
					t.col.Release()
					for _, e := range rows {
						op.Push(t.port, e, emit)
					}
					r.pool.Put(rows)
					return out
				}
				atomic.AddInt64(&n.stats.In, int64(len(t.elems)))
				for _, e := range t.elems {
					if e.IsBarrier() {
						// The splitter broadcast this replica's barrier:
						// snapshot the clone's partial state and pass the
						// barrier on to the merger for counting.
						if r.ctl != nil {
							r.ctl.addSnap(e.Punct.Barrier, repName(id, k), op)
						}
						out = append(out, e)
						continue
					}
					op.Push(t.port, e, emit)
				}
				return out
			}
			for t := range workCh[k] {
				out := process(t)
				if t.col == nil {
					r.pool.Put(t.elems)
				}
				if len(out) > 0 {
					partCh <- partMsg{worker: k, elems: out}
				} else {
					r.pool.Put(out)
				}
				r.sampleMem(id, op)
			}
			fout := r.pool.Get()
			if !crashed.Load() {
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							r.g.recordPanic(id, n, rec)
							crashed.Store(true)
						}
					}()
					op.Flush(func(o stream.Element) { fout = append(fout, o) })
				}()
			}
			partCh <- partMsg{worker: k, elems: fout}
			partCh <- partMsg{worker: k} // done marker
		}(k)
	}
	go func() {
		workWG.Wait()
		close(partCh)
	}()

	// Splitter: round-robin data batches, broadcast punctuations. The
	// edgeWriter invariant (a punctuation always flushes its batch) means
	// a punctuation can only be a batch's last element. Barriers are
	// aligned here (one per input writer), then broadcast so every
	// replica snapshots at the same position.
	go func() {
		k := 0
		bars := 0
		act := r.activeWidth(id)
		for m := range r.chans[id] {
			if r.adapt != nil {
				// Partial replicas merge through the combiner regardless of
				// which worker held which share, so the active data set may
				// change at any batch boundary. Punctuations and barriers
				// still broadcast to the whole pool: idle replicas must keep
				// their watermarks advancing or the min-watermark merge
				// stalls.
				if na := int(atomic.LoadInt32(&r.adapt.actP[id])); na != act {
					act = na
					if k >= act {
						k = 0
					}
				}
			}
			if m.col != nil {
				// Data-only column batch: round-robin it whole. Replica
				// output (partial records, progress punctuations) is
				// row-shaped either way, so the merger is unaffected.
				atomic.AddInt64(&r.pending[id], -int64(m.col.N()))
				if m.col.N() == 0 {
					m.col.Release()
					continue
				}
				workCh[k] <- m
				k = (k + 1) % act
				continue
			}
			atomic.AddInt64(&r.pending[id], -int64(len(m.elems)))
			var bar stream.Element
			if l := len(m.elems); l > 0 && m.elems[l-1].IsBarrier() {
				bar = m.elems[l-1]
				m.elems = m.elems[:l-1]
			}
			if l := len(m.elems); l > 0 && m.elems[l-1].IsPunct() {
				pe := m.elems[l-1]
				for j := range workCh {
					if j != k {
						workCh[j] <- batchMsg{port: m.port, elems: append(r.pool.Get(), pe)}
					}
				}
			}
			if len(m.elems) > 0 {
				workCh[k] <- m
				k = (k + 1) % act
			} else {
				r.pool.Put(m.elems)
			}
			if bar.Punct != nil {
				bars++
				if bars == r.inw[id] {
					bars = 0
					for j := range workCh {
						workCh[j] <- batchMsg{port: m.port, elems: append(r.pool.Get(), bar)}
					}
				}
			}
		}
		for _, c := range workCh {
			close(c)
		}
	}()

	// Merger: per-replica FIFO queues and watermarks drive the combiner.
	w := r.newEdgeWriter(n.out, id)
	emit := func(out stream.Element) {
		n.stats.Out++
		w.add(out)
	}
	comb := pa.Combiner()
	combCrashed := false
	cpush := func(e stream.Element) {
		if combCrashed {
			return
		}
		defer func() {
			if rec := recover(); rec != nil {
				r.g.recordPanic(id, n, rec)
				combCrashed = true
			}
		}()
		comb.Push(0, e, emit)
	}
	queues := make([][]stream.Element, p)
	heads := make([]int, p)
	wms := make([]int64, p)
	for k := range wms {
		wms[k] = math.MinInt64
	}
	released := int64(math.MinInt64)
	r.restoreOp(combName(id), comb)
	if r.restore != nil {
		if data := r.restore.Section(pmergeName(id)); data != nil {
			dec := ckpt.NewDecoder(data)
			for k := range queues {
				cnt := int(dec.Uvarint())
				for i := 0; i < cnt; i++ {
					queues[k] = append(queues[k], dec.Element())
				}
			}
			for k := range wms {
				wms[k] = dec.Varint()
			}
			released = dec.Varint()
			if dec.Err() != nil {
				r.restoreFailed(fmt.Errorf("exec: restore %s: %w", pmergeName(id), dec.Err()))
			}
		}
	}
	mbar := 0
	for msg := range partCh {
		if msg.elems == nil {
			wms[msg.worker] = math.MaxInt64
		} else {
			k := msg.worker
			for _, e := range msg.elems {
				if e.IsBarrier() {
					// One barrier per replica; when all P have arrived,
					// snapshot the combiner plus this merge stage's own
					// buffered state, then forward a single barrier.
					mbar++
					if mbar == p {
						mbar = 0
						if r.ctl != nil {
							epoch := e.Punct.Barrier
							r.ctl.addSnap(epoch, combName(id), comb)
							enc := &ckpt.Encoder{}
							for j := range queues {
								q := queues[j][heads[j]:]
								enc.Uvarint(uint64(len(q)))
								for _, qe := range q {
									enc.Element(qe)
								}
							}
							for j := range wms {
								enc.Varint(wms[j])
							}
							enc.Varint(released)
							r.ctl.addBytes(epoch, pmergeName(id), enc.Bytes())
						}
						w.add(e)
					}
					continue
				}
				if e.IsPunct() {
					if e.Punct.Ts > wms[k] {
						wms[k] = e.Punct.Ts
					}
					continue
				}
				queues[k] = append(queues[k], e)
				if e.Tuple.Ts > wms[k] {
					wms[k] = e.Tuple.Ts
				}
			}
			r.pool.Put(msg.elems)
		}
		min := wms[0]
		for _, m := range wms[1:] {
			if m < min {
				min = m
			}
		}
		if min <= released {
			continue
		}
		released = min
		for k := range queues {
			q, h := queues[k], heads[k]
			for h < len(q) && q[h].Tuple.Ts <= min {
				cpush(q[h])
				q[h] = stream.Element{}
				h++
			}
			if h == len(q) {
				queues[k], heads[k] = q[:0], 0
			} else {
				heads[k] = h
			}
		}
		if min < math.MaxInt64 {
			cpush(stream.Punct(&stream.Punctuation{Ts: min}))
		}
	}
	if !combCrashed {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					r.g.recordPanic(id, n, rec)
				}
			}()
			comb.Flush(emit)
		}()
	}
	r.sampleMemNow(id, comb)
	w.flush()
	r.closeDownstream(n.out)
}

// noSeq marks task elements (broadcast punctuations) that produce no
// output and therefore occupy no slot in the output merge.
const noSeq = ^uint64(0)

// partTask is one routed run of the merged input destined for a single
// join replica: parallel arrays of elements, their input ports and
// their global data sequence numbers. A task with resc set instead asks
// the worker to take part in a live re-split (see rescaleOp).
type partTask struct {
	elems []stream.Element
	ports []uint8
	seqs  []uint64
	resc  *rescaleOp
}

// applyRescale is one pool worker's half of a live key-partition
// re-split: snapshot the current replica into its section slot, signal
// the splitter, wait for the full section set, then rebuild this
// worker's slice of the key space at the new width with a fresh clone.
// Errors and panics detach the node but always complete the handshake
// (Done before any return), so the quiesced splitter cannot deadlock on
// a failed replica. Workers beyond the new active width come back with
// an empty clone — their old tuples now live under other replicas'
// hashes.
func (r *concRun) applyRescale(rs *rescaleOp, k int, id NodeID, n *node, op ops.Operator, clone func() ops.Operator, crashed *atomic.Bool) ops.Operator {
	var data []byte
	if !crashed.Load() {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					r.g.recordPanic(id, n, rec)
					crashed.Store(true)
				}
			}()
			if s, ok := op.(ckpt.Snapshotter); ok {
				enc := &ckpt.Encoder{}
				if err := s.Snapshot(enc); err != nil {
					panic(err)
				}
				data = enc.Bytes()
			}
		}()
	}
	rs.sections[k] = data
	rs.snapWG.Done()
	<-rs.ready
	if crashed.Load() {
		return op
	}
	nop := clone()
	if k < rs.newAct {
		if sr, ok := nop.(ops.StateRescaler); ok {
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						r.g.recordPanic(id, n, rec)
						crashed.Store(true)
					}
				}()
				if err := sr.RestorePartition(rs.sections, k, rs.newAct); err != nil {
					panic(err)
				}
			}()
			if crashed.Load() {
				return op
			}
		}
	}
	return nop
}

// partReply carries one task's outputs back to the merger:
// outs[ends[i-1]:ends[i]] is the output span of data element seqs[i].
// A reply with flush set carries a replica's end-of-stream flush output
// instead; one with barrier set reports that the replica snapshotted at
// the given checkpoint barrier.
type partReply struct {
	worker  int
	flush   bool
	barrier bool
	bar     stream.Element
	seqs    []uint64
	ends    []int
	outs    []stream.Element
	left    int // spans not yet delivered; outs recycles at zero
}

// runKeyPartitioned executes one two-input KeyPartitionable node (a
// join) as P replicas behind a hash-split router — the third scale-out
// lane, for equality-keyed stateful operators that neither Replicable
// (stateless) nor PartialAggregable (single-input aggregation) covers.
//
// Three pieces make the routed run byte-identical to the serial engine:
//
//   - A timestamp-aware port merge. The serial engine interleaves
//     sources by (head timestamp, source index); concurrent channels
//     destroy that order across the two ports. The splitter therefore
//     queues each port and re-derives the serial order: with both
//     queues non-empty it releases the smaller head timestamp (ties to
//     port 0, matching the source-index tie-break when port i is fed by
//     source i); with one queue empty it may release only elements at
//     or below the other port's punctuation watermark — the promise
//     that nothing earlier is still in flight. A port that stays silent
//     without punctuating buffers the other port until end-of-stream;
//     the lane trades that latency for exactness.
//
//   - Key-hash routing with broadcast progress. Data elements go to
//     replica hash(key) % P — both ports hash through the operator's
//     own PartitionHash, so matching tuples meet — while punctuations
//     are broadcast to every replica. When a late element is released
//     below its port's running maximum timestamp, the splitter first
//     broadcasts a synthesized punctuation at that maximum: replicas
//     that missed the higher-timestamped elements (routed elsewhere)
//     would otherwise under-expire the opposite window relative to the
//     serial run, which derives its watermark from every arrival.
//
//   - A sequence-restoring output merge. Each released data element
//     carries a global sequence number; workers report, per task, the
//     output span of every data element, and the merger releases spans
//     in sequence order. Punctuations produce no output by the
//     KeyPartitionable contract, so they need no merge slot. Flush
//     outputs (XJoin's cleanup phase) follow in replica order.
//
// Every data sequence number is reported exactly once — crashed
// replicas still account for their assigned spans with empty output —
// so the merge never stalls on a failed replica.
func (r *concRun) runKeyPartitioned(id NodeID, n *node, kp ops.KeyPartitionable, wg *sync.WaitGroup) {
	defer wg.Done()
	p := r.poolWidth()
	workCh := make([]chan partTask, p)
	for i := range workCh {
		workCh[i] = make(chan partTask, 2)
	}
	mergeCh := make(chan partReply, 2*p)
	var crashed atomic.Bool

	var workWG sync.WaitGroup
	for k := 0; k < p; k++ {
		workWG.Add(1)
		go func(k int) {
			defer workWG.Done()
			op := kp.ClonePartition()
			r.restoreOp(repName(id, k), op)
			for t := range workCh[k] {
				if t.resc != nil {
					op = r.applyRescale(t.resc, k, id, n, op,
						func() ops.Operator { return kp.ClonePartition() }, &crashed)
					continue
				}
				outs := r.pool.Get()
				seqs := make([]uint64, 0, len(t.elems))
				ends := make([]int, 0, len(t.elems))
				var bar stream.Element
				i := 0
				if !crashed.Load() {
					func() {
						defer func() {
							if rec := recover(); rec != nil {
								r.g.recordPanic(id, n, rec)
								crashed.Store(true)
							}
						}()
						for ; i < len(t.elems); i++ {
							if e := t.elems[i]; e.IsBarrier() {
								// Snapshot this partition at the aligned cut;
								// the barrier itself is reported out-of-band so
								// it occupies no slot in the sequence merge.
								if r.ctl != nil {
									r.ctl.addSnap(e.Punct.Barrier, repName(id, k), op)
								}
								bar = e
								continue
							}
							op.Push(int(t.ports[i]), t.elems[i], func(o stream.Element) {
								outs = append(outs, o)
							})
							if t.seqs[i] != noSeq {
								seqs = append(seqs, t.seqs[i])
								ends = append(ends, len(outs))
							}
						}
					}()
				}
				// After a crash (here or earlier) the remaining sequence
				// numbers still need empty spans: the merge must not stall.
				for ; i < len(t.elems); i++ {
					if t.seqs[i] != noSeq {
						seqs = append(seqs, t.seqs[i])
						ends = append(ends, len(outs))
					}
				}
				r.pool.Put(t.elems)
				mergeCh <- partReply{worker: k, seqs: seqs, ends: ends, outs: outs}
				if bar.Punct != nil {
					mergeCh <- partReply{worker: k, barrier: true, bar: bar}
				}
				r.sampleMem(id, op)
			}
			fout := r.pool.Get()
			if !crashed.Load() {
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							r.g.recordPanic(id, n, rec)
							crashed.Store(true)
						}
					}()
					op.Flush(func(o stream.Element) { fout = append(fout, o) })
				}()
			}
			r.sampleMemNow(id, op)
			mergeCh <- partReply{worker: k, flush: true, outs: fout}
		}(k)
	}
	go func() {
		workWG.Wait()
		close(mergeCh)
	}()

	// Splitter: timestamp-aware port merge, then hash routing.
	go func() {
		type portQueue struct {
			q    []stream.Element
			head int
		}
		var qs [2]portQueue
		pop := func(pt int) stream.Element {
			pq := &qs[pt]
			e := pq.q[pq.head]
			pq.q[pq.head] = stream.Element{}
			pq.head++
			if pq.head == len(pq.q) {
				pq.q, pq.head = pq.q[:0], 0
			}
			return e
		}
		pw := [2]int64{math.MinInt64, math.MinInt64}      // punctuation watermark per port
		maxTs := [2]int64{math.MinInt64, math.MinInt64}   // max released data ts per port
		synthed := [2]int64{math.MinInt64, math.MinInt64} // last synthesized watermark per port
		var seq uint64
		act := r.activeWidth(id)
		open := make([]partTask, p)
		add := func(k, port int, e stream.Element, s uint64) {
			t := &open[k]
			if t.elems == nil {
				t.elems = r.pool.Get()
			}
			t.elems = append(t.elems, e)
			t.ports = append(t.ports, uint8(port))
			t.seqs = append(t.seqs, s)
		}
		flushTask := func(k int) {
			if len(open[k].elems) == 0 {
				return
			}
			workCh[k] <- open[k]
			open[k] = partTask{}
		}
		broadcast := func(port int, e stream.Element) {
			// Only active replicas need progress: idle workers' state is
			// rebuilt wholesale (watermarks included) when a re-split brings
			// them in.
			for k := 0; k < act; k++ {
				add(k, port, e, noSeq)
				flushTask(k)
			}
		}
		// doRescale quiesces the replica set and re-splits it at the new
		// width: flush everything routed so far, hand every pool worker a
		// rescale task, wait for all snapshots, then release the restore
		// and route over the new active set. Nothing is routed while the
		// handshake runs, so each old replica snapshots at a task boundary
		// with no in-flight input — the same aligned-cut property the
		// checkpoint path relies on.
		doRescale := func(want int) {
			for k := 0; k < p; k++ {
				flushTask(k)
			}
			rs := &rescaleOp{sections: make([][]byte, p), newAct: want, ready: make(chan struct{})}
			rs.snapWG.Add(p)
			for k := 0; k < p; k++ {
				workCh[k] <- partTask{resc: rs}
			}
			rs.snapWG.Wait()
			close(rs.ready)
			act = want
			atomic.StoreInt32(&r.adapt.actP[id], int32(want))
			n.stats.Replicas = want
			n.stats.Rescales++
		}
		route := func(port int, e stream.Element) {
			n.stats.In++
			if e.IsPunct() {
				if e.Punct.Ts > synthed[port] {
					synthed[port] = e.Punct.Ts
				}
				broadcast(port, e)
				return
			}
			ts := e.Tuple.Ts
			if ts < maxTs[port] && maxTs[port] > synthed[port] {
				// Late element: replicas owning other keys saw none of
				// the higher timestamps — restore the implicit watermark
				// the serial run would have derived from them.
				synthed[port] = maxTs[port]
				broadcast(port, stream.Punct(&stream.Punctuation{Ts: maxTs[port]}))
			} else if ts > maxTs[port] {
				maxTs[port] = ts
			}
			k := int(kp.PartitionHash(port, e.Tuple) % uint64(act))
			n.stats.Routed[k]++
			add(k, port, e, seq)
			seq++
			if len(open[k].elems) >= r.opts.BatchSize {
				flushTask(k)
			}
		}
		release := func(closed bool) {
			for {
				ok0, ok1 := qs[0].head < len(qs[0].q), qs[1].head < len(qs[1].q)
				switch {
				case ok0 && ok1:
					if qs[1].q[qs[1].head].Ts() < qs[0].q[qs[0].head].Ts() {
						route(1, pop(1))
					} else {
						route(0, pop(0))
					}
				case ok0:
					if !closed && qs[0].q[qs[0].head].Ts() > pw[1] {
						return
					}
					route(0, pop(0))
				case ok1:
					if !closed && qs[1].q[qs[1].head].Ts() > pw[0] {
						return
					}
					route(1, pop(1))
				default:
					return
				}
			}
		}
		if r.restore != nil {
			// The port-merge buffers are part of the cut: elements that had
			// arrived but could not yet be released in serial order.
			if data := r.restore.Section(splitName(id)); data != nil {
				dec := ckpt.NewDecoder(data)
				for pt := 0; pt < 2; pt++ {
					cnt := int(dec.Uvarint())
					for i := 0; i < cnt; i++ {
						qs[pt].q = append(qs[pt].q, dec.Element())
					}
				}
				for pt := 0; pt < 2; pt++ {
					pw[pt] = dec.Varint()
					maxTs[pt] = dec.Varint()
					synthed[pt] = dec.Varint()
				}
				if dec.Err() != nil {
					r.restoreFailed(fmt.Errorf("exec: restore %s: %w", splitName(id), dec.Err()))
				}
			}
		}
		kbars := 0
		for m := range r.chans[id] {
			if r.adapt != nil {
				if want := int(atomic.LoadInt32(&r.adapt.wantP[id])); want != act && want >= 1 && want <= p {
					doRescale(want)
				}
			}
			if m.col != nil {
				// Row-mode lane (no ColPartitionable, or Columnar off):
				// materialize into the port merge.
				atomic.AddInt64(&r.pending[id], -int64(m.col.N()))
				n.stats.Batches++
				n.stats.RowFallbacks++
				m = r.materialize(m)
			} else {
				atomic.AddInt64(&r.pending[id], -int64(len(m.elems)))
			}
			for _, e := range m.elems {
				if e.IsBarrier() {
					kbars++
					if kbars == r.inw[id] {
						kbars = 0
						// Push everything releasable to the replicas, then
						// snapshot what must stay buffered and broadcast the
						// barrier so each partition cuts after its share.
						release(false)
						if r.ctl != nil {
							enc := &ckpt.Encoder{}
							for pt := 0; pt < 2; pt++ {
								q := qs[pt].q[qs[pt].head:]
								enc.Uvarint(uint64(len(q)))
								for _, qe := range q {
									enc.Element(qe)
								}
							}
							for pt := 0; pt < 2; pt++ {
								enc.Varint(pw[pt])
								enc.Varint(maxTs[pt])
								enc.Varint(synthed[pt])
							}
							r.ctl.addBytes(e.Punct.Barrier, splitName(id), enc.Bytes())
						}
						for k := 0; k < p; k++ {
							add(k, m.port, e, noSeq)
							flushTask(k)
						}
					}
					continue
				}
				if e.IsPunct() && e.Punct.Ts > pw[m.port] {
					pw[m.port] = e.Punct.Ts
				}
				qs[m.port].q = append(qs[m.port].q, e)
			}
			r.pool.Put(m.elems)
			release(false)
		}
		release(true)
		for k := 0; k < p; k++ {
			flushTask(k)
		}
		for _, c := range workCh {
			close(c)
		}
	}()

	// Merger: restore global data-sequence order across replicas.
	w := r.newEdgeWriter(n.out, id)
	type span struct {
		rep    *partReply
		lo, hi int
	}
	deliver := func(s span) {
		for _, e := range s.rep.outs[s.lo:s.hi] {
			n.stats.Out++
			w.add(e)
		}
		s.rep.left--
		if s.rep.left == 0 {
			r.pool.Put(s.rep.outs)
		}
	}
	held := make(map[uint64]span)
	var next uint64
	flushes := make([][]stream.Element, p)
	kmbar := 0
	for rep := range mergeCh {
		if rep.barrier {
			kmbar++
			if kmbar == p {
				kmbar = 0
				w.add(rep.bar)
			}
			continue
		}
		if rep.flush {
			flushes[rep.worker] = rep.outs
			continue
		}
		if len(rep.seqs) == 0 {
			r.pool.Put(rep.outs)
			continue
		}
		rp := new(partReply)
		*rp = rep
		rp.left = len(rp.seqs)
		lo := 0
		for i, s := range rp.seqs {
			sp := span{rep: rp, lo: lo, hi: rp.ends[i]}
			lo = rp.ends[i]
			if s != next {
				held[s] = sp
				continue
			}
			deliver(sp)
			next++
			for {
				h, ok := held[next]
				if !ok {
					break
				}
				delete(held, next)
				deliver(h)
				next++
			}
		}
	}
	// Every sequence number is reported exactly once, so nothing is left
	// held; be defensive anyway and drain in order.
	for len(held) > 0 {
		h, ok := held[next]
		if !ok {
			break
		}
		delete(held, next)
		deliver(h)
		next++
	}
	// Flush outputs last, in replica order: deterministic, and correct —
	// a flush can only depend on the complete input, which precedes it.
	for _, fo := range flushes {
		if fo == nil {
			continue
		}
		for _, e := range fo {
			n.stats.Out++
			w.add(e)
		}
		r.pool.Put(fo)
	}
	w.flush()
	r.closeDownstream(n.out)
}

// runSource feeds one source's elements into the graph in batches,
// drawing bulk reads when the source supports them. With checkpointing
// active the source emits a barrier punctuation every ctl.every
// elements and pauses until the epoch commits or aborts — the pause is
// what aligns the cut: nothing new enters the graph while barriers
// drain through it.
func (r *concRun) runSource(idx int, s *sourceNode, maxElements int64, wg *sync.WaitGroup) {
	defer wg.Done()
	if len(s.out) == 0 {
		return
	}
	if r.restore != nil {
		// Fast-forward past the elements the checkpointed run consumed;
		// the caller rebuilt the source from the beginning of its replay
		// window.
		skip := int64(r.restore.Meta[srcKey(idx)])
		for k := int64(0); k < skip; k++ {
			if _, ok := s.src.Next(); !ok {
				r.restoreFailed(fmt.Errorf("exec: source %d exhausted after %d of %d replay elements", idx, k, skip))
				break
			}
		}
		s.count = skip
	}
	w := r.newEdgeWriter(s.out, -1) // sources cannot write the graph output
	if r.adapt != nil {
		// Sources own the batch-target slots after the nodes; controller
		// shrinkage shows up both in flush boundaries and in the bulk-read
		// size below.
		w.tgt = &r.adapt.batchTgt[len(r.g.nodes)+idx]
		w.size = int(atomic.LoadInt64(w.tgt))
	}
	bulk, isBulk := s.src.(stream.BulkSource)
	var cw *colWriter
	var colSrc stream.ColSource
	if r.opts.Columnar {
		if sch := s.src.Schema(); sch != nil {
			// Transpose row sources into column batches on the same
			// boundaries the row engine would have flushed at (full
			// batch, punctuation), so batch shapes match across modes.
			cw = &colWriter{w: w, pool: stream.NewColPool(sch, r.opts.BatchSize)}
			if cs, ok := s.src.(stream.ColSource); ok {
				colSrc = cs // already columnar: skip the transpose
			}
		}
	}
	push := func(e stream.Element) {
		if cw != nil {
			cw.push(e)
			return
		}
		w.add(e)
	}
	var sent, sinceBarrier int64
	atBarrier := func() {
		sinceBarrier = 0
		epoch, ok := r.ctl.barrier()
		if !ok {
			return
		}
		r.ctl.sourceMeta(epoch, srcKey(idx), uint64(s.count))
		if cw != nil {
			cw.flushCol() // the barrier must not overtake open columns
		}
		w.add(stream.Punct(stream.BarrierPunct(epoch))) // punctuation: flushes the batch
		r.ctl.wait(epoch)
	}
	for maxElements < 0 || sent < maxElements {
		if r.g.halted.Load() {
			break // fail-fast: stop feeding, let the pipeline drain
		}
		if colSrc != nil {
			max := r.opts.BatchSize
			if maxElements >= 0 && int64(max) > maxElements-sent {
				max = int(maxElements - sent)
			}
			if r.ctl != nil && int64(max) > r.ctl.every-sinceBarrier {
				max = int(r.ctl.every - sinceBarrier)
			}
			if max > w.size {
				max = w.size // controller-shrunk micro-batches
			}
			cb, more := colSrc.NextColBatch(max)
			k := 0
			if cb != nil {
				k = cb.N()
				w.addBatch(cb)
			}
			sent += int64(k)
			s.count += int64(k)
			sinceBarrier += int64(k)
			if r.ctl != nil && sinceBarrier >= r.ctl.every {
				atBarrier()
			}
			if !more {
				break
			}
			if k < max {
				w.flush() // momentarily idle: don't hold the edge batch
			}
		} else if isBulk {
			max := r.opts.BatchSize
			if maxElements >= 0 && int64(max) > maxElements-sent {
				max = int(maxElements - sent)
			}
			if r.ctl != nil && int64(max) > r.ctl.every-sinceBarrier {
				max = int(r.ctl.every - sinceBarrier)
			}
			if max > w.size {
				max = w.size // controller-shrunk micro-batches
			}
			tmp := r.pool.Get()
			tmp, more := bulk.NextBatch(tmp, max)
			for _, e := range tmp {
				push(e)
			}
			sent += int64(len(tmp))
			s.count += int64(len(tmp))
			sinceBarrier += int64(len(tmp))
			r.pool.Put(tmp)
			if r.ctl != nil && sinceBarrier >= r.ctl.every {
				atBarrier()
			}
			if !more {
				break
			}
			if len(tmp) < max {
				// A short read from a live source (network transport,
				// push-fed queue) means it is momentarily idle: push
				// the partial edge batch downstream now instead of
				// holding elements until the batch fills.
				if cw != nil {
					cw.flushCol()
				}
				w.flush()
			}
		} else {
			e, ok := s.src.Next()
			if !ok {
				break
			}
			sent++
			s.count++
			sinceBarrier++
			push(e)
			if r.ctl != nil && sinceBarrier >= r.ctl.every {
				atBarrier()
			}
		}
	}
	if r.ctl != nil {
		// This source is done: a pending epoch can no longer receive its
		// barrier, and future epochs would wait on it forever.
		r.ctl.shutdown(fmt.Errorf("exec: source %d exhausted mid-epoch", idx))
	}
	if cw != nil {
		cw.flushCol()
	}
	w.flush()
	r.closeDownstream(s.out)
}
