package query

import (
	"strings"
	"testing"

	"streamdb/internal/exec"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

func TestParseLiterals(t *testing.T) {
	q, err := Parse("select * from Traffic where flag = true or flag = false or x is null or y is not null")
	if err != nil {
		t.Fatal(err)
	}
	r := Render(q.Where)
	for _, want := range []string{"true", "false", "IS NULL", "IS NOT NULL"} {
		if !strings.Contains(r, want) {
			t.Errorf("rendering %q missing %q", r, want)
		}
	}
	q2, err := Parse("select -x, 2.5, 'str', f() from Traffic")
	if err != nil {
		t.Fatal(err)
	}
	if got := Render(q2.Select[0].Expr); got != "-x" {
		t.Errorf("neg = %q", got)
	}
	if got := Render(q2.Select[1].Expr); got != "2.5" {
		t.Errorf("float = %q", got)
	}
	if got := Render(q2.Select[2].Expr); got != "'str'" {
		t.Errorf("string = %q", got)
	}
	if got := Render(q2.Select[3].Expr); got != "f()" {
		t.Errorf("empty call = %q", got)
	}
}

func TestParseNullComparisonAndModulo(t *testing.T) {
	q, err := Parse("select a % 2 from Traffic where b <> null")
	if err != nil {
		t.Fatal(err)
	}
	if got := Render(q.Select[0].Expr); got != "(a % 2)" {
		t.Errorf("modulo = %q", got)
	}
	if got := Render(q.Where); got != "(b <> NULL)" {
		t.Errorf("null cmp = %q", got)
	}
}

func TestParseQualifiedStar(t *testing.T) {
	// count(*) renders with the star.
	q, err := Parse("select count(*) from Traffic")
	if err != nil {
		t.Fatal(err)
	}
	if got := Render(q.Select[0].Expr); got != "count(*)" {
		t.Errorf("agg star = %q", got)
	}
}

func TestParseMoreErrors(t *testing.T) {
	bad := []string{
		"select a from Traffic where a is",      // IS without NULL
		"select a from Traffic where a is not",  // IS NOT without NULL
		"select x. from Traffic",                // dangling qualifier
		"select (a from Traffic",                // unclosed paren
		"select a as from Traffic",              // AS without ident
		"select a from Traffic [landmark]",      // LANDMARK without SLIDE
		"select a from Traffic [range ten]",     // non-numeric duration
		"select a from Traffic [rows ten]",      // non-numeric rows
		"select a from Traffic [bogus 1]",       // unknown window kind
		"select a from Traffic group by a as",   // GROUP alias missing
		"select a from Traffic with",            // WITH without APPROX
		"select f(a, from Traffic",              // broken args
		"select a from Traffic, S as",           // join alias missing
		"select null + 1 from Traffic where -x", // ok parse; binder later
	}
	for _, src := range bad[:13] {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseDurationUnits(t *testing.T) {
	q, err := Parse("select * from Traffic [range 100 ns slide 50 ns]")
	if err != nil {
		t.Fatal(err)
	}
	if q.From[0].Window.Range != 100 || q.From[0].Window.Slide != 50 {
		t.Errorf("ns window = %+v", q.From[0].Window)
	}
	q2, err := Parse("select * from Traffic [range 1 minute]")
	if err != nil {
		t.Fatal(err)
	}
	if q2.From[0].Window.Range != 60*stream.Second {
		t.Errorf("minute window = %+v", q2.From[0].Window)
	}
}

func TestCompileScalarFunctionInWhere(t *testing.T) {
	cat := testCatalog()
	// Functions, negation, IS NULL, modulo through the binder.
	src := stream.FromTuples(cat.schemas["Traffic"],
		trafficTuple(1, 1, 2, 6, 100),
		trafficTuple(2, 2, 2, 6, 200),
	)
	rows, _, err := Run(
		"select -length as neg, length % 3 as m from Traffic where tb(time, 1000) is not null and not (length < 50)",
		cat, map[string]stream.Source{"Traffic": src}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if v, _ := rows[0].Vals[0].AsInt(); v != -100 {
		t.Errorf("neg = %d", v)
	}
	if v, _ := rows[0].Vals[1].AsInt(); v != 1 {
		t.Errorf("mod = %d", v)
	}
}

func TestCompileBinderErrors(t *testing.T) {
	cat := testCatalog()
	bad := []string{
		"select nosuch(length) from Traffic",                // unknown function
		"select length from Traffic where not length",       // NOT non-boolean
		"select length from Traffic where length + 'x' = 1", // type error
		"select count(length, srcIP) from Traffic",          // agg arity
		"select count(nosuchcol) from Traffic",              // agg arg binding
		"select 1.5e from Traffic",                          // lexer/parse error
		"select median(*) from Traffic group by protocol",   // * needs count
	}
	for _, src := range bad {
		q, err := Parse(src)
		if err != nil {
			continue
		}
		if _, err := Compile(q, cat); err == nil {
			t.Errorf("compiled %q", src)
		}
	}
}

func TestJoinResidualPredicate(t *testing.T) {
	cat := testCatalog()
	sSch, _ := cat.Lookup("S")
	aSch, _ := cat.Lookup("A")
	mk := func(ts int64, ip uint32, port uint64) *tuple.Tuple {
		return tuple.New(ts, tuple.Time(ts), tuple.IP(ip), tuple.Uint(port))
	}
	syn := stream.FromTuples(sSch, mk(1, 10, 80), mk(2, 11, 90))
	ack := stream.FromTuples(aSch, mk(3, 10, 81), mk(4, 11, 85))
	// Cross-stream non-equi conjunct becomes a residual predicate.
	rows, plan, err := Run(
		`select S.tstmp from S [range 30], A [range 30]
		 where S.srcIP = A.destIP and A.destPort > S.srcPort`,
		cat, map[string]stream.Source{"S": syn, "A": ack}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.IsJoin {
		t.Error("not a join plan")
	}
	// Pair (10,80)x(10,81): 81 > 80 ok. Pair (11,90)x(11,85): 85 > 90 no.
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestJoinThetaWithoutKeys(t *testing.T) {
	cat := testCatalog()
	sSch, _ := cat.Lookup("S")
	aSch, _ := cat.Lookup("A")
	mk := func(ts int64, ip uint32, port uint64) *tuple.Tuple {
		return tuple.New(ts, tuple.Time(ts), tuple.IP(ip), tuple.Uint(port))
	}
	syn := stream.FromTuples(sSch, mk(1, 10, 80))
	ack := stream.FromTuples(aSch, mk(2, 10, 443), mk(3, 10, 10))
	// No equality conjunct at all: pure theta join via nested loops.
	rows, _, err := Run(
		`select S.tstmp from S [range 30], A [range 30]
		 where A.destPort > S.srcPort`,
		cat, map[string]stream.Source{"S": syn, "A": ack}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("theta join rows = %v", rows)
	}
}

func TestJoinSelectStar(t *testing.T) {
	cat := testCatalog()
	sSch, _ := cat.Lookup("S")
	aSch, _ := cat.Lookup("A")
	mk := func(ts int64, ip uint32, port uint64) *tuple.Tuple {
		return tuple.New(ts, tuple.Time(ts), tuple.IP(ip), tuple.Uint(port))
	}
	syn := stream.FromTuples(sSch, mk(1, 10, 80))
	ack := stream.FromTuples(aSch, mk(2, 10, 80))
	rows, plan, err := Run(
		`select * from S [range 30], A [range 30] where S.srcIP = A.destIP`,
		cat, map[string]stream.Source{"S": syn, "A": ack}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Vals) != sSch.Arity()+aSch.Arity() {
		t.Fatalf("star join rows = %v", rows)
	}
	if plan.OutSchema.Arity() != 6 {
		t.Errorf("star join schema = %s", plan.OutSchema)
	}
}

func TestJoinUnboundedWindowsFlaggedUnbounded(t *testing.T) {
	cat := testCatalog()
	q, err := Parse("select * from S, A where S.srcIP = A.destIP")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bounded.OK {
		t.Error("windowless join judged bounded")
	}
}

func TestCollectBoundsMirroredConstants(t *testing.T) {
	cat := testCatalog()
	// Constants on the left side of the comparison.
	q, err := Parse("select length, count(*) from Traffic where 512 < length and 1024 > length group by length")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Bounded.OK {
		t.Errorf("mirrored range not detected: %v", plan.Bounded)
	}
	// Equality bounds a column too.
	q2, _ := Parse("select length, count(*) from Traffic where length = 700 group by length")
	plan2, err := Compile(q2, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !plan2.Bounded.OK {
		t.Errorf("equality not detected: %v", plan2.Bounded)
	}
}

func TestBoundedAnalysisModuloAndGroupExpr(t *testing.T) {
	cat := testCatalog()
	// length % 16 is bounded for any length.
	q, err := Parse("select m, count(*) from Traffic group by length % 16 as m")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Bounded.OK {
		t.Errorf("modulo grouping not bounded: %v", plan.Bounded)
	}
}

func TestHavingWithNotAndFunctions(t *testing.T) {
	cat := testCatalog()
	var tuples []*tuple.Tuple
	for i := int64(0); i < 10; i++ {
		tuples = append(tuples, trafficTuple(i, uint32(i%2), 9, 6, 100))
	}
	src := stream.FromTuples(cat.schemas["Traffic"], tuples...)
	rows, _, err := Run(
		"select srcIP, count(*) as c from Traffic group by srcIP having not (count(*) < 5)",
		cat, map[string]stream.Source{"Traffic": src}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestQueryLimit(t *testing.T) {
	cat := testCatalog()
	var tuples []*tuple.Tuple
	for i := int64(0); i < 100; i++ {
		tuples = append(tuples, trafficTuple(i, 1, 2, 6, 100))
	}
	src := stream.FromTuples(cat.schemas["Traffic"], tuples...)
	rows, _, err := Run("select * from Traffic", cat,
		map[string]stream.Source{"Traffic": src}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Errorf("limit gave %d rows", len(rows))
	}
}

func TestJoinMissingSources(t *testing.T) {
	cat := testCatalog()
	q, _ := Parse("select * from S, A where S.srcIP = A.destIP")
	plan, err := Compile(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	sSch, _ := cat.Lookup("S")
	for _, srcs := range []map[string]stream.Source{
		{},
		{"S": stream.FromTuples(sSch)},
	} {
		g := newTestGraph()
		if err := plan.Build(g, srcs); err == nil {
			t.Error("missing source accepted")
		}
	}
}

func TestAggregateMissingSource(t *testing.T) {
	cat := testCatalog()
	q, _ := Parse("select count(*) from Traffic")
	plan, err := Compile(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Build(newTestGraph(), nil); err == nil {
		t.Error("missing source accepted")
	}
}

func newTestGraph() *exec.Graph { return exec.NewGraph(nil) }
