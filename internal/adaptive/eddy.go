// Package adaptive implements eddies-style adaptive query processing
// [AH00] (slide 22): a routing operator that continuously re-orders a
// set of commutative filters by their observed selectivity and cost,
// so the plan adapts when the data distribution drifts mid-stream —
// "volatile, unpredictable environments".
package adaptive

import (
	"fmt"
	"sort"

	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// Filter is one commutative predicate with bookkeeping.
type Filter struct {
	Name string
	Pred expr.Expr
	// Cost is the relative per-evaluation cost (1 = cheap predicate).
	Cost float64

	// Observed statistics with exponential decay.
	seen   float64
	passed float64
}

// observedSel returns the decayed pass fraction (1 when unobserved).
func (f *Filter) observedSel() float64 {
	if f.seen <= 0 {
		return 1
	}
	return f.passed / f.seen
}

// Eddy routes each tuple through the filters in the order of their
// current rank = cost / (1 - selectivity): the classic "drop early,
// drop cheap" criterion. Statistics decay so the ordering tracks
// distribution drift; re-ranking happens every Rerank tuples.
type Eddy struct {
	filters []*Filter
	order   []int
	// Decay in (0,1] scales old statistics down at each re-rank; lower
	// values adapt faster.
	Decay float64
	// Rerank is the re-ordering period in tuples.
	Rerank int
	since  int
	evals  int64
	in     int64
	out    int64
}

// NewEddy builds an eddy over the commutative filter set.
func NewEddy(filters []*Filter, decay float64, rerank int) (*Eddy, error) {
	if len(filters) == 0 {
		return nil, fmt.Errorf("adaptive: no filters")
	}
	if decay <= 0 || decay > 1 {
		return nil, fmt.Errorf("adaptive: decay must be in (0,1]")
	}
	if rerank <= 0 {
		return nil, fmt.Errorf("adaptive: rerank period must be positive")
	}
	for _, f := range filters {
		if f.Pred.Kind() != tuple.KindBool {
			return nil, fmt.Errorf("adaptive: filter %s is not boolean", f.Name)
		}
		if f.Cost <= 0 {
			f.Cost = 1
		}
	}
	order := make([]int, len(filters))
	for i := range order {
		order[i] = i
	}
	return &Eddy{filters: filters, order: order, Decay: decay, Rerank: rerank}, nil
}

// rank is the expected cost to disposition a tuple: run cheap and
// selective filters first.
func rank(f *Filter) float64 {
	if f.seen <= 0 {
		// Never observed — a filter stuck behind one that drops
		// everything. Route it first so it gets explored.
		return -1
	}
	drop := 1 - f.observedSel()
	if drop <= 0 {
		return f.Cost * 1e9 // never drops: run last
	}
	return f.Cost / drop
}

func (e *Eddy) rerank() {
	sort.SliceStable(e.order, func(a, b int) bool {
		return rank(e.filters[e.order[a]]) < rank(e.filters[e.order[b]])
	})
	for _, f := range e.filters {
		f.seen *= e.Decay
		f.passed *= e.Decay
	}
}

// Process routes one tuple; returns whether it survived all filters.
func (e *Eddy) Process(t *tuple.Tuple) bool {
	e.in++
	e.since++
	if e.since >= e.Rerank {
		e.rerank()
		e.since = 0
	}
	for _, i := range e.order {
		f := e.filters[i]
		e.evals++
		f.seen++
		if !expr.EvalBool(f.Pred, t) {
			return false
		}
		f.passed++
	}
	e.out++
	return true
}

// ProcessElement adapts Process to stream elements (punctuations pass).
func (e *Eddy) ProcessElement(el stream.Element) (stream.Element, bool) {
	if el.IsPunct() {
		return el, true
	}
	return el, e.Process(el.Tuple)
}

// Order reports the current filter ordering by name.
func (e *Eddy) Order() []string {
	out := make([]string, len(e.order))
	for k, i := range e.order {
		out[k] = e.filters[i].Name
	}
	return out
}

// Stats reports (tuples in, tuples surviving, predicate evaluations).
// A fixed worst-order plan performs len(filters) evaluations per tuple
// minus early exits; the eddy's advantage shows in evals.
func (e *Eddy) Stats() (in, out, evals int64) { return e.in, e.out, e.evals }

// FixedPlan is the non-adaptive baseline: filters always run in the
// given order.
type FixedPlan struct {
	filters []*Filter
	evals   int64
	in, out int64
}

// NewFixedPlan builds the baseline with the declared order.
func NewFixedPlan(filters []*Filter) (*FixedPlan, error) {
	if len(filters) == 0 {
		return nil, fmt.Errorf("adaptive: no filters")
	}
	return &FixedPlan{filters: filters}, nil
}

// Process runs the fixed order; returns survival.
func (p *FixedPlan) Process(t *tuple.Tuple) bool {
	p.in++
	for _, f := range p.filters {
		p.evals++
		if !expr.EvalBool(f.Pred, t) {
			return false
		}
	}
	p.out++
	return true
}

// Stats reports (in, out, evals).
func (p *FixedPlan) Stats() (in, out, evals int64) { return p.in, p.out, p.evals }
