package share

import (
	"testing"

	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

var sch = tuple.NewSchema("S",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "v", Kind: tuple.KindInt},
)

func el(ts, v int64) stream.Element {
	return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(v)))
}

func gt(t *testing.T, threshold int64) expr.Expr {
	t.Helper()
	e, err := expr.NewBin(expr.OpGt, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(threshold)))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSharedSelectDeduplicatesPredicates(t *testing.T) {
	s := NewSharedSelect("ss", sch)
	counts := map[int]int{}
	mkSink := func(qid int) ops.Emit {
		return func(stream.Element) { counts[qid]++ }
	}
	// 8 queries, only 2 distinct predicates.
	for i := 0; i < 4; i++ {
		if _, err := s.Register(gt(t, 10), mkSink(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 4; i < 8; i++ {
		if _, err := s.Register(gt(t, 20), mkSink(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.DistinctPredicates() != 2 {
		t.Fatalf("distinct predicates = %d", s.DistinctPredicates())
	}
	for i := int64(0); i < 30; i++ {
		s.Push(el(i, i))
	}
	shared, unshared := s.Stats()
	if shared != 30*2 {
		t.Errorf("shared evals = %d, want 60", shared)
	}
	if unshared != 30*8 {
		t.Errorf("unshared evals = %d, want 240", unshared)
	}
	// v > 10 passes 19 tuples (11..29); v > 20 passes 9 (21..29).
	if counts[0] != 19 || counts[7] != 9 {
		t.Errorf("query outputs = %v", counts)
	}
}

func TestSharedSelectPunctuationFansOut(t *testing.T) {
	s := NewSharedSelect("ss", sch)
	got := 0
	if _, err := s.Register(gt(t, 0), func(e stream.Element) {
		if e.IsPunct() {
			got++
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Push(stream.Punct(stream.ProgressPunct(1, 0, tuple.Time(1))))
	if got != 1 {
		t.Error("punctuation not forwarded")
	}
}

func TestSharedSelectRejectsNonBoolean(t *testing.T) {
	s := NewSharedSelect("ss", sch)
	if _, err := s.Register(expr.MustColumn(sch, "v"), func(stream.Element) {}); err == nil {
		t.Error("non-boolean predicate accepted")
	}
}

func joinSchemas() (*tuple.Schema, *tuple.Schema) {
	a := tuple.NewSchema("A",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt},
	)
	b := tuple.NewSchema("B",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt},
	)
	return a, b
}

func TestSharedWindowJoinRoutesByDistance(t *testing.T) {
	a, b := joinSchemas()
	var narrow, wide []int64
	queries := []JoinQuery{
		{Window: 5, Sink: func(e stream.Element) { narrow = append(narrow, e.Ts()) }},
		{Window: 50, Sink: func(e stream.Element) { wide = append(wide, e.Ts()) }},
	}
	sj, err := NewSharedWindowJoin("sj", a, b, []int{1}, []int{1}, queries)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ts, k int64) stream.Element {
		return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(k)))
	}
	sj.Push(0, mk(0, 7))
	sj.Push(1, mk(3, 7))  // distance 3: both queries
	sj.Push(1, mk(20, 7)) // distance 20: only the wide query
	if len(narrow) != 1 {
		t.Errorf("narrow query got %d results, want 1", len(narrow))
	}
	if len(wide) != 2 {
		t.Errorf("wide query got %d results, want 2", len(wide))
	}
	probes, routed := sj.Stats()
	if probes == 0 || routed != 3 {
		t.Errorf("probes=%d routed=%d", probes, routed)
	}
	if sj.UnsharedProbeEstimate() <= float64(probes) {
		t.Error("sharing shows no probe saving")
	}
}

func TestSharedWindowJoinValidation(t *testing.T) {
	a, b := joinSchemas()
	if _, err := NewSharedWindowJoin("sj", a, b, []int{1}, []int{1}, nil); err == nil {
		t.Error("no queries accepted")
	}
	if _, err := NewSharedWindowJoin("sj", a, b, []int{1}, []int{1},
		[]JoinQuery{{Window: 0, Sink: func(stream.Element) {}}}); err == nil {
		t.Error("zero window accepted")
	}
	noOrd := tuple.NewSchema("N", tuple.Field{Name: "k", Kind: tuple.KindInt})
	if _, err := NewSharedWindowJoin("sj", noOrd, b, []int{0}, []int{1},
		[]JoinQuery{{Window: 5, Sink: func(stream.Element) {}}}); err == nil {
		t.Error("missing ordering attribute accepted")
	}
}
