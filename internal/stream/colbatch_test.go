package stream

// Unit coverage for the columnar batch ownership protocol: pooled
// batches must not recycle while any reference (including a WithSel
// view's pin on its parent) is outstanding, AppendRows must detach from
// the batch storage, and the pool must hand back zeroed batches.

import (
	"testing"

	"streamdb/internal/tuple"
)

var colSch = tuple.NewSchema("C",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "v", Kind: tuple.KindInt},
)

func fillBatch(b *Batch, n int) {
	for i := 0; i < n; i++ {
		b.AppendRow(tuple.New(int64(i), tuple.Time(int64(i)), tuple.Int(int64(i*10))))
	}
}

func TestColBatchRetainBlocksRecycle(t *testing.T) {
	pool := NewColPool(colSch, 8)
	b := pool.Get()
	fillBatch(b, 8)
	if !b.Exclusive() {
		t.Fatal("fresh batch must be exclusively owned")
	}

	b.Retain() // second consumer
	if b.Exclusive() {
		t.Fatal("retained batch reported exclusive")
	}
	b.Release() // first consumer done — storage must survive
	if got := b.Cols[1][3]; got != tuple.Int(30) {
		t.Fatalf("batch zeroed while a reference was outstanding: %v", got)
	}
	// The batch never reached the freelist: a Get must not return it.
	if pool.Get() == b {
		t.Fatal("pool recycled a batch with an outstanding reference")
	}
	b.Release() // last reference: now it recycles, zeroed
	c := pool.Get()
	if c.Rows() != 0 || c.Sel != nil {
		t.Fatalf("pooled batch not reset: %d rows, sel %v", c.Rows(), c.Sel)
	}
	c.Release()
}

func TestColBatchWithSelPinsParent(t *testing.T) {
	pool := NewColPool(colSch, 4)
	b := pool.Get()
	fillBatch(b, 4)

	v := b.WithSel([]int32{1, 3})
	if v.N() != 2 || v.Rows() != 4 {
		t.Fatalf("view: N=%d Rows=%d", v.N(), v.Rows())
	}
	if v.Exclusive() {
		t.Fatal("a view must never report exclusive (it does not own storage)")
	}
	b.Release() // producer done; the view's pin keeps the storage alive
	if got := v.Cols[1][3]; got != tuple.Int(30) {
		t.Fatalf("parent zeroed under a live view: %v", got)
	}
	if pool.Get() == b {
		t.Fatal("pool recycled a parent pinned by a view")
	}
	var out []Element
	out = v.AppendRows(out)
	if len(out) != 2 || out[0].Tuple.Ts != 1 || out[1].Tuple.Vals[1] != tuple.Int(30) {
		t.Fatalf("view materialized wrong rows: %v", out)
	}
	v.Release() // drops the view and unpins the parent
	d := pool.Get()
	if d.Rows() != 0 {
		t.Fatalf("recycled parent not reset: %d rows", d.Rows())
	}
	d.Release()
}

func TestColBatchAppendRowsDetaches(t *testing.T) {
	pool := NewColPool(colSch, 6)
	b := pool.Get()
	fillBatch(b, 6)
	b.Sel = b.SelBuf()
	b.Sel = append(b.Sel, 0, 2, 4)

	var out []Element
	out = b.AppendRows(out)
	if len(out) != 3 {
		t.Fatalf("materialized %d rows, want 3", len(out))
	}
	b.Release() // zeroes and recycles the batch storage
	for i, wantV := range []int64{0, 20, 40} {
		e := out[i]
		if e.Tuple.Ts != int64(2*i) || e.Tuple.Vals[1] != tuple.Int(wantV) {
			t.Fatalf("row %d corrupted after batch release: %v", i, e.Tuple)
		}
	}
}
