package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

var testSch = tuple.NewSchema("T",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "k", Kind: tuple.KindInt},
	tuple.Field{Name: "v", Kind: tuple.KindFloat},
)

func testTup(ts, k int64, v float64) *tuple.Tuple {
	return tuple.New(ts, tuple.Time(ts), tuple.Int(k), tuple.Float(v))
}

func TestCodecRoundtrip(t *testing.T) {
	enc := &Encoder{}
	enc.Uvarint(0)
	enc.Uvarint(1 << 40)
	enc.Varint(-7)
	enc.Int(42)
	enc.Bool(true)
	enc.Bool(false)
	enc.Float64(3.25)
	enc.BytesField([]byte{9, 8, 7})
	enc.String("hello")
	enc.Tuple(testTup(5, 2, 0.5))
	enc.Values([]tuple.Value{tuple.Int(1), tuple.Float(2.5)})
	if err := enc.TupleBatch(testSch, []*tuple.Tuple{testTup(1, 1, 1), testTup(2, 2, 2)}); err != nil {
		t.Fatal(err)
	}
	enc.Element(stream.Tup(testTup(9, 3, 0.25)))
	enc.Element(stream.Punct(stream.ProgressPunct(17, 0, tuple.Time(17))))
	enc.Element(stream.Punct(stream.BarrierPunct(4)))

	dec := NewDecoder(enc.Bytes())
	if got := dec.Uvarint(); got != 0 {
		t.Fatalf("uvarint = %d", got)
	}
	if got := dec.Uvarint(); got != 1<<40 {
		t.Fatalf("uvarint = %d", got)
	}
	if got := dec.Varint(); got != -7 {
		t.Fatalf("varint = %d", got)
	}
	if got := dec.Int(); got != 42 {
		t.Fatalf("int = %d", got)
	}
	if !dec.Bool() || dec.Bool() {
		t.Fatal("bools mangled")
	}
	if got := dec.Float64(); got != 3.25 {
		t.Fatalf("float = %v", got)
	}
	if got := dec.BytesField(); !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("bytes = %v", got)
	}
	if got := dec.String(); got != "hello" {
		t.Fatalf("string = %q", got)
	}
	if got := dec.Tuple(); got.Ts != 5 || got.String() != testTup(5, 2, 0.5).String() {
		t.Fatalf("tuple = %v", got)
	}
	if got := dec.Values(); len(got) != 2 || got[0].Raw() != 1 {
		t.Fatalf("values = %v", got)
	}
	batch := dec.TupleBatch(testSch)
	if len(batch) != 2 || batch[0].Ts != 1 || batch[1].Ts != 2 {
		t.Fatalf("batch = %v", batch)
	}
	if e := dec.Element(); e.Tuple == nil || e.Tuple.Ts != 9 {
		t.Fatalf("element = %v", e)
	}
	if e := dec.Element(); e.Punct == nil || e.Punct.Ts != 17 || len(e.Punct.Fields) != 1 {
		t.Fatalf("punct element = %v", e)
	}
	if e := dec.Element(); !e.IsBarrier() || e.Punct.Barrier != 4 {
		t.Fatalf("barrier element = %v", e)
	}
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
	if dec.Remaining() != 0 {
		t.Fatalf("%d trailing bytes", dec.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	dec := NewDecoder([]byte{0x80}) // truncated uvarint
	_ = dec.Uvarint()
	if dec.Err() == nil {
		t.Fatal("truncated uvarint not detected")
	}
	first := dec.Err()
	_ = dec.String()
	_ = dec.Float64()
	if dec.Err() != first {
		t.Fatal("error not sticky")
	}
}

func testCheckpoint(epoch int64) *Checkpoint {
	c := &Checkpoint{
		Epoch:  epoch,
		OutSeq: 100 * epoch,
		Meta:   map[string]uint64{"src0": uint64(epoch) * 10, "par": 2},
	}
	enc := &Encoder{}
	enc.Varint(epoch)
	enc.String("state")
	c.Add("n0", enc.Bytes())
	c.Add("n1", []byte{}) // stateless operators contribute empty sections
	return c
}

func TestCheckpointEncodeDecode(t *testing.T) {
	c := testCheckpoint(3)
	buf := c.Encode()
	got, err := DecodeCheckpoint(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || got.OutSeq != 300 || got.Meta["src0"] != 30 {
		t.Fatalf("decoded %+v", got)
	}
	if len(got.Sections) != 2 || got.Section("n1") == nil {
		t.Fatalf("sections %+v (empty section must survive as non-nil)", got.Sections)
	}

	// One flipped payload byte must fail the per-section CRC.
	bad := append([]byte(nil), buf...)
	bad[len(bad)-6] ^= 0x40
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Fatal("corrupted checkpoint decoded cleanly")
	}
	// Truncation anywhere must error, never panic.
	for cut := 0; cut < len(buf); cut += 7 {
		if _, err := DecodeCheckpoint(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
}

type countState struct{ n int64 }

func (s *countState) Snapshot(enc *Encoder) error { enc.Varint(s.n); return nil }
func (s *countState) Restore(dec *Decoder) error  { s.n = dec.Varint(); return dec.Err() }

func TestRestoreSectionStrict(t *testing.T) {
	c := &Checkpoint{}
	enc := &Encoder{}
	enc.Varint(7)
	c.Add("ok", enc.Bytes())
	enc2 := &Encoder{}
	enc2.Varint(7)
	enc2.Varint(8) // trailing state the operator shape doesn't expect
	c.Add("long", enc2.Bytes())

	var s countState
	if err := c.RestoreSection("ok", &s); err != nil || s.n != 7 {
		t.Fatalf("restore ok: %v, n=%d", err, s.n)
	}
	if err := c.RestoreSection("missing", &s); err == nil {
		t.Fatal("missing section restored")
	}
	if err := c.RestoreSection("long", &s); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes not rejected: %v", err)
	}
}

func TestStoreCommitLatest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c, err := s.Latest(); err != nil || c != nil {
		t.Fatalf("empty store Latest = %v, %v", c, err)
	}
	for epoch := int64(1); epoch <= 3; epoch++ {
		if err := s.Commit(testCheckpoint(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := s.Latest()
	if err != nil || c == nil || c.Epoch != 3 {
		t.Fatalf("Latest = %+v, %v", c, err)
	}
	// Stale epochs are rejected: recovery must never move backwards.
	if err := s.Commit(testCheckpoint(3)); err == nil {
		t.Fatal("re-commit of epoch 3 accepted")
	}
	if err := s.Commit(testCheckpoint(2)); err == nil {
		t.Fatal("commit of older epoch accepted")
	}
	// Two-generation retention: exactly current + previous data files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	dataFiles := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "ckpt-") {
			dataFiles++
		}
	}
	if dataFiles != 2 {
		t.Fatalf("%d data files after gc, want 2", dataFiles)
	}
}

func currentGenPath(t *testing.T, dir string) string {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Latest()
	if err != nil || c == nil {
		t.Fatalf("Latest: %v, %v", c, err)
	}
	entries, _ := os.ReadDir(dir)
	var newest string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "ckpt-") && e.Name() > newest {
			newest = e.Name()
		}
	}
	return filepath.Join(dir, newest)
}

func TestStoreTornDataFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(testCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(testCheckpoint(2)); err != nil {
		t.Fatal(err)
	}

	// Crash truncated the current generation's data file after the
	// manifest named it: recovery must fall back to epoch 1.
	path := currentGenPath(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := s.Latest()
	if err != nil || c == nil || c.Epoch != 1 {
		t.Fatalf("after torn current gen: Latest = %+v, %v", c, err)
	}

	// Same-length corruption: caught by the payload CRC instead.
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x01
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err = s.Latest()
	if err != nil || c == nil || c.Epoch != 1 {
		t.Fatalf("after corrupt current gen: Latest = %+v, %v", c, err)
	}
}

func TestStoreManifestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(testCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(dir, "MANIFEST")
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x10
	if err := os.WriteFile(mpath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Latest(); err == nil {
		t.Fatal("corrupt manifest read cleanly")
	}
	// A corrupt manifest must not block progress: the next commit
	// rewrites it.
	if err := s.Commit(testCheckpoint(5)); err != nil {
		t.Fatal(err)
	}
	c, err := s.Latest()
	if err != nil || c == nil || c.Epoch != 5 {
		t.Fatalf("after rewrite: Latest = %+v, %v", c, err)
	}
}

func TestRecoverySink(t *testing.T) {
	var got []int64
	rs := NewRecoverySink(func(e stream.Element) { got = append(got, e.Tuple.Ts) }, 2)
	for ts := int64(1); ts <= 5; ts++ {
		rs.Push(stream.Tup(testTup(ts, 0, 0)))
	}
	if rs.Dupes() != 2 || rs.Delivered() != 3 {
		t.Fatalf("dupes=%d delivered=%d", rs.Dupes(), rs.Delivered())
	}
	if len(got) != 3 || got[0] != 3 {
		t.Fatalf("got %v, want [3 4 5]", got)
	}
}
