package window

import (
	"testing"
	"testing/quick"
)

// Regression for the Closed fix: when Range is not a multiple of Slide,
// window ends do not lie on slide multiples.
func TestAssignerClosedNonMultipleRange(t *testing.T) {
	a := NewAssigner(Time(25, 10))
	// Ends are 25, 35, 45, ... Closed(40) must be 35, not 40.
	if c := a.Closed(40); c != 35 {
		t.Errorf("Closed(40) = %d, want 35", c)
	}
	if c := a.Closed(35); c != 35 {
		t.Errorf("Closed(35) = %d, want 35", c)
	}
	// Before the first end, nothing has closed.
	if c := a.Closed(24); c != 0 {
		t.Errorf("Closed(24) = %d, want 0", c)
	}
	if c := a.Closed(3); c != 0 {
		t.Errorf("Closed(3) = %d, want 0", c)
	}
}

// Regression: landmark windows close at landmark emission boundaries
// (multiples of the slide), independent of any range.
func TestAssignerClosedLandmark(t *testing.T) {
	a := NewAssigner(Landmark(30))
	if c := a.Closed(95); c != 90 {
		t.Errorf("Closed(95) = %d, want 90", c)
	}
	if c := a.Closed(30); c != 30 {
		t.Errorf("Closed(30) = %d, want 30", c)
	}
	if c := a.Closed(29); c != 0 {
		t.Errorf("Closed(29) = %d, want 0", c)
	}
}

// Property: Closed(now) is the largest assignable window end <= now.
func TestAssignerClosedProperty(t *testing.T) {
	f := func(nowRaw uint16, rngRaw, slideRaw uint8) bool {
		slide := int64(slideRaw%17) + 1
		rng := slide + int64(rngRaw%40) // any rng >= slide, not only multiples
		now := int64(nowRaw % 5000)
		a := NewAssigner(Time(rng, slide))
		c := a.Closed(now)
		if c > now {
			return false
		}
		if c == 0 {
			return now < rng
		}
		// c must be a real end (k*slide + rng) and the next end exceeds now.
		return (c-rng)%slide == 0 && c-rng >= 0 && c+slide > now
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPaneCompatible(t *testing.T) {
	cases := []struct {
		spec Spec
		want bool
	}{
		{Time(60, 20), true},
		{Tumbling(60), true},
		{Time(25, 10), false}, // range not a multiple of slide
		{Landmark(10), false}, // landmark: already O(1) per tuple
		{Rows(5), false},
		{Punctuated(), false},
		{Spec{}, false},
	}
	for _, c := range cases {
		if got := PaneCompatible(c.spec); got != c.want {
			t.Errorf("PaneCompatible(%s) = %v, want %v", c.spec, got, c.want)
		}
	}
	if _, err := NewPaneAssigner(Time(25, 10)); err == nil {
		t.Error("incompatible spec accepted")
	}
}

func TestPaneAssignerSingle(t *testing.T) {
	p, err := NewPaneAssigner(Time(60, 20))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Pane(70); got != (ID{Start: 60, End: 80}) {
		t.Errorf("Pane(70) = %v", got)
	}
	if got := p.Pane(0); got != (ID{Start: 0, End: 20}) {
		t.Errorf("Pane(0) = %v", got)
	}
}

// The pane→window coverage must agree with the per-tuple Assigner: for
// any ts, the windows covering ts's pane are exactly Assign(ts).
func TestPaneWindowsMatchAssigner(t *testing.T) {
	f := func(tsRaw uint32, rngRaw, slideRaw uint8) bool {
		slide := int64(slideRaw%20) + 1
		rng := slide * (int64(rngRaw%6) + 1)
		ts := int64(tsRaw % 100000)
		a := NewAssigner(Time(rng, slide))
		p, err := NewPaneAssigner(Time(rng, slide))
		if err != nil {
			return false
		}
		want := append([]ID(nil), a.Assign(ts)...)
		var got []ID
		p.Windows(p.Pane(ts).Start, func(w ID) bool {
			got = append(got, w)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// A window is the disjoint union of its panes, and a pane retires
// exactly when its last covering window has closed.
func TestPanePartitionAndRetirement(t *testing.T) {
	p, err := NewPaneAssigner(Time(80, 20))
	if err != nil {
		t.Fatal(err)
	}
	w := ID{Start: 40, End: 120}
	var panes []int64
	p.Panes(w, func(ps int64) bool {
		panes = append(panes, ps)
		return true
	})
	want := []int64{40, 60, 80, 100}
	if len(panes) != len(want) {
		t.Fatalf("Panes(%v) = %v", w, panes)
	}
	for i := range want {
		if panes[i] != want[i] {
			t.Errorf("pane %d = %d, want %d", i, panes[i], want[i])
		}
	}
	// Pane [40,60) is covered last by window [40,120): it retires only
	// once the watermark reaches 120.
	if p.Retired(40, 119) {
		t.Error("pane retired while its last window was open")
	}
	if !p.Retired(40, 120) {
		t.Error("pane not retired after its last window closed")
	}
}
