package experiments

import (
	"fmt"

	"streamdb/internal/adaptive"
	"streamdb/internal/agg"
	"streamdb/internal/expr"
	"streamdb/internal/optimizer/share"
	"streamdb/internal/shed"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// E10SystemProfiles reproduces the comparative matrix of slide 52 as a
// running experiment: one common workload (a filtered, windowed,
// grouped aggregation over bursty traffic at 2x capacity) executed
// under five engine configurations that emulate the surveyed systems'
// signature behaviours. The qualitative matrix columns become measured
// numbers.
func E10SystemProfiles(scale Scale) *Table {
	t := &Table{
		ID:    "E10",
		Title: "prototype system profiles on one workload (slide 52)",
		Header: []string{"profile", "answers", "answerMode", "dropped%",
			"peakStateKB", "note"},
	}
	sch := stream.TrafficSchema("Traffic")
	n := scale.N(200000)
	mkSrc := func() stream.Source {
		return stream.Limit(stream.NewTrafficStream(10, 50000, 5000), n)
	}
	length := expr.MustColumn(sch, "length")
	srcIP := expr.MustColumn(sch, "srcIP")
	pred, _ := expr.NewBin(expr.OpGt, length, expr.Constant(tuple.Int(512)))

	type outcome struct {
		answers int
		mode    string
		dropped float64
		peakKB  int
		note    string
	}

	runGroupBy := func(src stream.Source, spec window.Spec, approx bool, pre func(stream.Element) (stream.Element, bool)) outcome {
		cnt, _ := agg.Lookup("count", false)
		med, _ := agg.Lookup("median", approx)
		gb, err := agg.NewGroupBy("q", sch, []expr.Expr{srcIP}, []string{"srcIP"},
			[]agg.Spec{{Fn: cnt, Name: "cnt"}, {Fn: med, Arg: length, Name: "med"}},
			spec, nil)
		if err != nil {
			panic(err)
		}
		var o outcome
		emit := func(stream.Element) { o.answers++ }
		total, passed := 0, 0
		for {
			e, ok := src.Next()
			if !ok {
				break
			}
			total++
			if !expr.EvalBool(pred, e.Tuple) {
				continue
			}
			if pre != nil {
				var keep bool
				e, keep = pre(e)
				if !keep {
					continue
				}
			}
			passed++
			gb.Push(0, e, emit)
			if total%1000 == 0 {
				if m := gb.MemSize(); m/1024 > o.peakKB {
					o.peakKB = m / 1024
				}
			}
		}
		gb.Flush(emit)
		o.dropped = 0
		if total > 0 {
			o.dropped = 100 * (1 - float64(passed)/float64(total))
		}
		return o
	}

	// Aurora: QoS-driven load shedding — a random shedder tuned by the
	// feedback controller keeps the operator within "capacity".
	{
		shedder, _ := shed.NewRandom("shed", sch, 0, 42)
		ctl, _ := shed.NewController(shedder, 25000, 0.5)
		i := 0
		o := runGroupBy(mkSrc(), window.Tumbling(stream.Second), false,
			func(e stream.Element) (stream.Element, bool) {
				if i%1000 == 0 {
					ctl.Observe(50000)
				}
				i++
				keep := false
				shedder.Push(0, e, func(stream.Element) { keep = true })
				return e, keep
			})
		o.mode = "approximate (shed)"
		o.note = "QoS-based load shedding"
		t.AddRow("Aurora", o.answers, o.mode, fmt.Sprintf("%.1f", o.dropped), o.peakKB, o.note)
	}
	// Gigascope: two-level partial aggregation with bounded low level
	// (S-in S-out, exact answers, decomposition avoids drops).
	{
		cnt, _ := agg.Lookup("count", false)
		pa, _ := agg.NewPartialAgg("lfta", sch, []expr.Expr{srcIP}, []string{"srcIP"},
			[]agg.Spec{{Fn: cnt, Name: "cnt"}}, 4096, int64(stream.Second))
		fa, _ := agg.NewFinalAgg("hfta", pa)
		answers := 0
		peak := 0
		emitF := func(stream.Element) { answers++ }
		emitP := func(e stream.Element) { fa.Push(0, e, emitF) }
		src := mkSrc()
		total, passed := 0, 0
		for {
			e, ok := src.Next()
			if !ok {
				break
			}
			total++
			if !expr.EvalBool(pred, e.Tuple) {
				continue
			}
			passed++
			pa.Push(0, e, emitP)
			if total%1000 == 0 {
				if m := pa.MemSize() / 1024; m > peak {
					peak = m
				}
			}
		}
		pa.Flush(emitP)
		fa.Flush(emitF)
		t.AddRow("Gigascope", answers, "exact (2-level)",
			fmt.Sprintf("%.1f", 100*(1-float64(passed)/float64(total))), peak,
			"decomposition, bounded low level")
	}
	// Hancock: stream-in relation-out block processing — exact, but the
	// answer is a stored profile, not a stream.
	{
		o := runGroupBy(mkSrc(), window.Spec{}, false, nil)
		t.AddRow("Hancock", o.answers, "exact (relation-out)",
			fmt.Sprintf("%.1f", o.dropped), o.peakKB, "block processing, I/O-aware")
	}
	// STREAM: static approximation — synopsis-backed holistic aggregate
	// in bounded memory.
	{
		o := runGroupBy(mkSrc(), window.Tumbling(stream.Second), true, nil)
		t.AddRow("STREAM", o.answers, "approximate (synopsis)",
			fmt.Sprintf("%.1f", o.dropped), o.peakKB, "bounded-memory static analysis")
	}
	// Telegraph: adaptive per-tuple routing (eddy) ahead of the
	// aggregation.
	{
		f1, _ := expr.NewBin(expr.OpGt, length, expr.Constant(tuple.Int(512)))
		f2, _ := expr.NewBin(expr.OpEq, expr.MustColumn(sch, "protocol"), expr.Constant(tuple.Int(6)))
		eddy, _ := adaptive.NewEddy([]*adaptive.Filter{
			{Name: "len", Pred: f1, Cost: 1},
			{Name: "proto", Pred: f2, Cost: 1},
		}, 0.5, 200)
		o := runGroupBy(mkSrc(), window.Tumbling(stream.Second), false,
			func(e stream.Element) (stream.Element, bool) {
				return eddy.ProcessElement(e)
			})
		_, _, evals := eddy.Stats()
		o.note = fmt.Sprintf("adaptive routing, %.2f evals/tuple", float64(evals)/float64(n))
		t.AddRow("Telegraph", o.answers, "exact (adaptive)",
			fmt.Sprintf("%.1f", o.dropped), o.peakKB, o.note)
	}
	t.Notes = append(t.Notes,
		"expected shape: Aurora sheds under overload; Gigascope/Hancock stay exact; STREAM bounds memory via synopses; Telegraph adapts its plan")
	return t
}

// E14MultiQuerySharing reproduces slide 45: shared select/project and
// shared window joins vs per-query deployments, swept over query count.
func E14MultiQuerySharing(scale Scale) *Table {
	t := &Table{
		ID:     "E14",
		Title:  "multi-query processing: sharing (slide 45)",
		Header: []string{"queries", "kind", "sharedWork", "unsharedWork", "saving"},
	}
	sch := stream.TrafficSchema("Traffic")
	n := scale.N(50000)
	length := expr.MustColumn(sch, "length")

	for _, nq := range []int{4, 16, 64} {
		// Selection sharing: nq queries, only 4 distinct predicates.
		ss := share.NewSharedSelect("ss", sch)
		for q := 0; q < nq; q++ {
			threshold := int64(256 * (1 + q%4))
			pred, _ := expr.NewBin(expr.OpGt, length, expr.Constant(tuple.Int(threshold)))
			if _, err := ss.Register(pred, func(stream.Element) {}); err != nil {
				panic(err)
			}
		}
		src := stream.Limit(stream.NewTrafficStream(14, 50000, 100), n)
		for {
			e, ok := src.Next()
			if !ok {
				break
			}
			ss.Push(0, e, nil)
		}
		sharedEvals, unsharedEvals := ss.Stats()
		t.AddRow(nq, "select (4 distinct preds)", sharedEvals, unsharedEvals,
			fmt.Sprintf("%.1fx", float64(unsharedEvals)/float64(sharedEvals)))

		// Window-join sharing: nq queries with different windows share
		// one physical join sized to the largest.
		a, b := joinSchemas()
		queries := make([]share.JoinQuery, nq)
		for q := 0; q < nq; q++ {
			queries[q] = share.JoinQuery{
				Window: int64(q+1) * 100,
				Sink:   func(stream.Element) {},
			}
		}
		sj, err := share.NewSharedWindowJoin("sj", a, b, []int{1}, []int{1}, queries)
		if err != nil {
			panic(err)
		}
		input := genJoinInput(15, n/5, 50)
		for _, in := range input {
			sj.Push(in.port, stream.Tup(in.t), nil)
		}
		probes, _ := sj.Stats()
		unshared := sj.UnsharedProbeEstimate()
		t.AddRow(nq, "window join", probes, fmt.Sprintf("%.0f", unshared),
			fmt.Sprintf("%.1fx", unshared/float64(probes)))
	}
	t.Notes = append(t.Notes,
		"expected shape: sharing saves roughly linearly in the query count for identical predicates, and proportionally to window overlap for joins")
	return t
}
