package relation

import (
	"sort"
	"testing"

	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

var sch = tuple.NewSchema("T",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "v", Kind: tuple.KindInt},
)

func row(ts, v int64) *tuple.Tuple {
	return tuple.New(ts, tuple.Time(ts), tuple.Int(v))
}

func TestTableInsertScanSelect(t *testing.T) {
	tbl := NewTable(sch)
	for i := int64(0); i < 10; i++ {
		if err := tbl.Insert(row(i, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != 10 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if err := tbl.Insert(tuple.New(0, tuple.Int(1))); err == nil {
		t.Error("arity mismatch accepted")
	}
	pred, _ := expr.NewBin(expr.OpGe, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(50)))
	got := tbl.Select(pred)
	if len(got) != 5 {
		t.Errorf("Select = %d rows", len(got))
	}
	if len(tbl.Select(nil)) != 10 {
		t.Error("nil predicate should select all")
	}
	n := 0
	tbl.Scan(func(*tuple.Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("Scan early stop visited %d", n)
	}
}

func TestTableDelete(t *testing.T) {
	tbl := NewTable(sch)
	for i := int64(0); i < 10; i++ {
		tbl.Insert(row(i, i))
	}
	pred, _ := expr.NewBin(expr.OpLt, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(4)))
	if n := tbl.Delete(pred); n != 4 {
		t.Errorf("Delete = %d", n)
	}
	if tbl.Len() != 6 {
		t.Errorf("Len = %d", tbl.Len())
	}
	if tbl.Delete(nil) != 0 {
		t.Error("nil predicate deleted rows")
	}
}

func TestTableSourceOrdered(t *testing.T) {
	tbl := NewTable(sch)
	tbl.Insert(row(5, 1))
	tbl.Insert(row(1, 2))
	tbl.Insert(row(3, 3))
	got := stream.DrainTuples(tbl.Source())
	if len(got) != 3 {
		t.Fatalf("drained %d", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Ts < got[j].Ts }) {
		t.Error("source not timestamp-ordered")
	}
}

func TestTableSink(t *testing.T) {
	tbl := NewTable(sch)
	sink := tbl.Sink()
	sink(stream.Tup(row(1, 1)))
	sink(stream.Punct(stream.ProgressPunct(2, 0, tuple.Time(2))))
	if tbl.Len() != 1 {
		t.Errorf("Len = %d (punctuation must not insert)", tbl.Len())
	}
}

func TestDB(t *testing.T) {
	db := NewDB()
	if _, err := db.Create("t1", sch); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create("t1", sch); err == nil {
		t.Error("duplicate create accepted")
	}
	db.Create("a", sch)
	if _, ok := db.Table("t1"); !ok {
		t.Error("lookup failed")
	}
	if _, ok := db.Table("nope"); ok {
		t.Error("ghost table")
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "a" {
		t.Errorf("Names = %v", names)
	}
}

func TestRStream(t *testing.T) {
	tbl := NewTable(sch)
	tbl.Insert(row(1, 1))
	tbl.Insert(row(2, 2))
	s := NewStreamer(RStream)
	out := s.Snapshot(100, tbl)
	if len(out) != 2 {
		t.Fatalf("RStream = %d", len(out))
	}
	for _, e := range out {
		if e.Ts() != 100 {
			t.Error("snapshot ts not applied")
		}
	}
	// Unchanged table: RStream emits everything again.
	if len(s.Snapshot(200, tbl)) != 2 {
		t.Error("RStream must re-emit")
	}
}

func TestIStreamEmitsOnlyInsertions(t *testing.T) {
	tbl := NewTable(sch)
	tbl.Insert(row(1, 1))
	s := NewStreamer(IStream)
	if got := s.Snapshot(10, tbl); len(got) != 1 {
		t.Fatalf("first snapshot = %d", len(got))
	}
	if got := s.Snapshot(20, tbl); len(got) != 0 {
		t.Fatalf("unchanged snapshot = %d", len(got))
	}
	tbl.Insert(row(2, 2))
	tbl.Insert(row(3, 1)) // duplicate value of an existing row
	got := s.Snapshot(30, tbl)
	if len(got) != 2 {
		t.Fatalf("after inserts = %d, want 2 (multiset semantics)", len(got))
	}
}

func TestDStreamEmitsDeletions(t *testing.T) {
	tbl := NewTable(sch)
	tbl.Insert(row(1, 1))
	tbl.Insert(row(2, 2))
	s := NewStreamer(DStream)
	if got := s.Snapshot(10, tbl); len(got) != 0 {
		t.Fatalf("initial = %d", len(got))
	}
	pred, _ := expr.NewBin(expr.OpEq, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(1)))
	tbl.Delete(pred)
	got := s.Snapshot(20, tbl)
	if len(got) != 1 {
		t.Fatalf("after delete = %d", len(got))
	}
	if v, _ := got[0].Tuple.Vals[1].AsInt(); v != 1 {
		t.Errorf("deleted row v = %d", v)
	}
	if got[0].Ts() != 20 {
		t.Error("deletion ts wrong")
	}
}

func TestAuditStreamAgainstRelation(t *testing.T) {
	// The slide-15 pattern: the DBMS audits a stream system's output.
	// Stream result: windowed counts; relation: raw rows; the audit
	// recomputes the count from the relation.
	raw := NewTable(sch)
	for i := int64(0); i < 100; i++ {
		raw.Insert(row(i, i%5))
	}
	pred, _ := expr.NewBin(expr.OpEq, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(3)))
	audit := len(raw.Select(pred))
	if audit != 20 {
		t.Errorf("audit count = %d", audit)
	}
}
