package ops

import (
	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// Columnar operator surface. Operators that can consume whole column
// batches implement BatchOperator next to the row-at-a-time Operator
// interface; the concurrent engine feeds them stream.Batch values and
// row⇄column adapters bridge everything else. Punctuations (and
// checkpoint barriers) never travel in batches — they stay on the row
// path through Push — so batch implementations handle data rows only.

// EmitBatch receives columnar operator output. The callee takes
// ownership of the caller's reference.
type EmitBatch func(*stream.Batch)

// BatchOperator is implemented by operators with a columnar fast path.
// ProcessBatch consumes the caller's reference on b (retaining first if
// it emits b onward and also needs it afterwards). Row output — final
// aggregation records, progress punctuations — goes through emit;
// columnar output through emitB. The engine preserves the relative
// order of emitB and emit calls.
type BatchOperator interface {
	Operator
	ProcessBatch(port int, b *stream.Batch, emitB EmitBatch, emit Emit)
}

// ProcessBatch implements BatchOperator: the kernel refines the
// selection vector in place when this operator holds the sole
// reference, and through an aliased view when the batch is shared.
func (s *Select) ProcessBatch(_ int, b *stream.Batch, emitB EmitBatch, _ Emit) {
	n := b.N()
	s.in += int64(n)
	if s.kern == nil {
		s.kern = expr.CompileKernel(s.pred, s.sch.Arity())
	}
	excl := b.Exclusive()
	var dst []int32
	if excl {
		if b.Sel != nil {
			dst = b.Sel[:0]
		} else {
			dst = b.SelBuf()
		}
	} else {
		dst = make([]int32, 0, n)
	}
	res := s.kern(b.Cols, b.Ts, b.Sel, dst)
	s.out += int64(len(res))
	if len(res) == 0 {
		b.Release()
		return
	}
	if excl {
		b.Sel = res
		emitB(b)
		return
	}
	v := b.WithSel(res)
	b.Release()
	emitB(v)
}

// ProcessBatch implements BatchOperator: bare-column projections copy
// the selected rows of the chosen columns into a pooled dense output
// batch (column-at-a-time, no per-row dispatch); computed expressions
// gather each row once and evaluate. The output batch is dense (no
// selection vector), so downstream kernels scan it contiguously.
func (p *Project) ProcessBatch(_ int, b *stream.Batch, emitB EmitBatch, _ Emit) {
	rows := b.N()
	if rows == 0 {
		b.Release()
		return
	}
	if p.pool == nil {
		size := b.Rows()
		if size < 64 {
			size = 64
		}
		p.pool = stream.NewColPool(p.sch, size)
	}
	out := p.pool.Get()
	if p.colIdx != nil {
		if b.Sel == nil {
			out.Ts = append(out.Ts, b.Ts...)
			for i, ci := range p.colIdx {
				out.Cols[i] = append(out.Cols[i], b.Cols[ci]...)
			}
		} else {
			for _, r := range b.Sel {
				out.Ts = append(out.Ts, b.Ts[r])
			}
			for i, ci := range p.colIdx {
				src := b.Cols[ci]
				dst := out.Cols[i]
				for _, r := range b.Sel {
					dst = append(dst, src[r])
				}
				out.Cols[i] = dst
			}
		}
	} else {
		if cap(p.scratch) < len(b.Cols) {
			p.scratch = make([]tuple.Value, len(b.Cols))
		}
		p.srow.Vals = p.scratch[:len(b.Cols)]
		row := func(r int) {
			b.GatherRow(r, &p.srow)
			out.Ts = append(out.Ts, p.srow.Ts)
			for i, ex := range p.exprs {
				out.Cols[i] = append(out.Cols[i], ex.Eval(&p.srow))
			}
		}
		if b.Sel == nil {
			for r := 0; r < b.Rows(); r++ {
				row(r)
			}
		} else {
			for _, r := range b.Sel {
				row(int(r))
			}
		}
	}
	b.Release()
	emitB(out)
}
