package tuple

import (
	"fmt"
	"strings"
)

// Field describes one attribute of a schema.
type Field struct {
	Name string
	Kind Kind
	// Bounded marks attributes with a bounded domain (e.g. protocol,
	// packet length after a range predicate). The bounded-memory analysis
	// of [ABB+02] (slides 35-36) keys off this flag.
	Bounded bool
	// Ordering marks the attribute the stream is ordered by (slide 17:
	// "ordering domains" as in Gigascope/Hancock). At most one field of a
	// schema is the ordering attribute.
	Ordering bool
}

// Schema is an ordered list of fields plus a name. Schemas are immutable
// once built; operators derive new schemas rather than mutating.
type Schema struct {
	Name   string
	Fields []Field
	byName map[string]int
}

// NewSchema builds a schema, indexing fields by name. Duplicate field
// names or multiple ordering attributes panic: schemas are authored by
// code or validated by the parser before reaching here.
func NewSchema(name string, fields ...Field) *Schema {
	s := &Schema{Name: name, Fields: fields, byName: make(map[string]int, len(fields))}
	ordering := 0
	for i, f := range fields {
		if _, dup := s.byName[f.Name]; dup {
			panic(fmt.Sprintf("tuple: duplicate field %q in schema %q", f.Name, name))
		}
		s.byName[f.Name] = i
		if f.Ordering {
			ordering++
		}
	}
	if ordering > 1 {
		panic(fmt.Sprintf("tuple: schema %q has %d ordering attributes", name, ordering))
	}
	return s
}

// Index returns the position of the named field, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Field returns the named field and whether it exists.
func (s *Schema) Field(name string) (Field, bool) {
	i := s.Index(name)
	if i < 0 {
		return Field{}, false
	}
	return s.Fields[i], true
}

// OrderingIndex returns the position of the ordering attribute, or -1 if
// the stream is only position-ordered (slide 17: Aurora/STREAM style).
func (s *Schema) OrderingIndex() int {
	for i, f := range s.Fields {
		if f.Ordering {
			return i
		}
	}
	return -1
}

// Arity returns the number of fields.
func (s *Schema) Arity() int { return len(s.Fields) }

// Project derives a schema containing the named fields in order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	fields := make([]Field, 0, len(names))
	for _, n := range names {
		f, ok := s.Field(n)
		if !ok {
			return nil, fmt.Errorf("tuple: schema %q has no field %q", s.Name, n)
		}
		fields = append(fields, f)
	}
	return NewSchema(s.Name, fields...), nil
}

// Concat derives the schema of a join result. Colliding names are
// disambiguated with the source schema name ("S.tstmp").
func (s *Schema) Concat(o *Schema) *Schema {
	fields := make([]Field, 0, len(s.Fields)+len(o.Fields))
	seen := make(map[string]bool, len(s.Fields))
	for _, f := range s.Fields {
		seen[f.Name] = true
		fields = append(fields, f)
	}
	for _, f := range o.Fields {
		if seen[f.Name] {
			f.Name = o.Name + "." + f.Name
		}
		// The join result is not guaranteed ordered on either input's
		// ordering attribute.
		f.Ordering = false
		fields = append(fields, f)
	}
	return NewSchema(s.Name+"_"+o.Name, fields...)
}

// String renders the schema as "name(field TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Kind.String())
		if f.Ordering {
			b.WriteString(" ORDERING")
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is one stream element's data: a timestamp (the system ordering
// position, in virtual nanoseconds) and one value per schema field.
type Tuple struct {
	// Ts is the tuple's position in the stream's order: either the value
	// of the ordering attribute or the arrival position for
	// position-ordered streams (slide 17).
	Ts   int64
	Vals []Value
}

// New constructs a tuple.
func New(ts int64, vals ...Value) *Tuple { return &Tuple{Ts: ts, Vals: vals} }

// Clone deep-copies the tuple (values are immutable so a shallow value
// copy suffices).
func (t *Tuple) Clone() *Tuple {
	vals := make([]Value, len(t.Vals))
	copy(vals, t.Vals)
	return &Tuple{Ts: t.Ts, Vals: vals}
}

// Concat builds the join output tuple; the result carries the later of
// the two timestamps, matching window-join semantics [KNV03].
func (t *Tuple) Concat(o *Tuple) *Tuple {
	ts := t.Ts
	if o.Ts > ts {
		ts = o.Ts
	}
	vals := make([]Value, 0, len(t.Vals)+len(o.Vals))
	vals = append(vals, t.Vals...)
	vals = append(vals, o.Vals...)
	return &Tuple{Ts: ts, Vals: vals}
}

// MemSize approximates the tuple's memory footprint in bytes; the
// memory-based optimizer (slide 42) charges queue backlog with it.
func (t *Tuple) MemSize() int {
	n := 16
	for _, v := range t.Vals {
		n += v.MemSize()
	}
	return n
}

// String renders the tuple as "(v1, v2, ...)@ts".
func (t *Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t.Vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	fmt.Fprintf(&b, ")@%d", t.Ts)
	return b.String()
}

// Key computes a composite hash over the listed field positions: the
// group-by and join-key identity used by hash tables.
func (t *Tuple) Key(idx []int) uint64 {
	h := uint64(1469598103934665603)
	for _, i := range idx {
		vh := t.Vals[i].Hash()
		h ^= vh
		h *= 1099511628211
	}
	return h
}

// FastKeyKind reports whether a single-column key of this kind may be
// hashed with Key1: kinds whose raw payload alone determines equality
// among themselves and across each other (Int, Uint and Time all store
// the numeric value in the payload, and numerically equal values of
// those kinds are Equal). Float is excluded — integral floats must
// collide with their integer value, which needs the generic path — and
// so are String/Bool/IP (IP only equals other integral kinds by value,
// which the payload does preserve, but schemas mixing IP with INT keys
// are not worth a fast lane).
func FastKeyKind(k Kind) bool {
	return k == KindInt || k == KindUint || k == KindTime
}

// Key1 is the fast lane of Key for a single Int/Uint/Time column: a
// splitmix64-style avalanche of the raw payload, skipping the generic
// byte-wise FNV walk. Callers must establish FastKeyKind for the
// column's schema kind on every tuple source sharing the hash space
// (both sides of a join): equal values then hash identically. A NULL
// value hashes as payload 0; NULL equals nothing, so a collision with
// Int(0) costs one KeyEqual rejection, never a wrong match.
func (t *Tuple) Key1(i int) uint64 {
	return splitmix64(t.Vals[i].num)
}

func splitmix64(v uint64) uint64 {
	x := v + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashCol is the column-kernel form of Key1: it writes the payload hash
// of every value of col into the parallel out slice, whose length must
// be at least len(col). The loop body is pure integer arithmetic — no
// branches, no per-row dispatch — so a batch's key column hashes in one
// sweep. The FastKeyKind gating contract of Key1 applies unchanged.
func HashCol(col []Value, out []uint64) {
	_ = out[:len(col)]
	for r := range col {
		out[r] = splitmix64(col[r].num)
	}
}

// HashColRows is HashCol restricted to the listed row indexes: out[i]
// receives the hash of col[rows[i]]. len(out) must be >= len(rows).
func HashColRows(col []Value, rows []int32, out []uint64) {
	_ = out[:len(rows)]
	for i, r := range rows {
		out[i] = splitmix64(col[r].num)
	}
}

// HashColsRows is the generic-key column form of Key: for each listed
// row it FNV-combines Value.Hash over the key columns (cols[keys[0]],
// cols[keys[1]], ...), writing into the parallel out slice. It matches
// Tuple.Key(keys) exactly for tuples gathered from the same columns.
func HashColsRows(cols [][]Value, keys []int, rows []int32, out []uint64) {
	_ = out[:len(rows)]
	for i, r := range rows {
		h := uint64(1469598103934665603)
		for _, c := range keys {
			h ^= cols[c][r].Hash()
			h *= 1099511628211
		}
		out[i] = h
	}
}

// KeyEqual reports whether two tuples agree on the listed field positions
// (hash-collision confirmation for hash tables).
func (t *Tuple) KeyEqual(o *Tuple, idx, odx []int) bool {
	for k := range idx {
		if !t.Vals[idx[k]].Equal(o.Vals[odx[k]]) {
			return false
		}
	}
	return true
}
