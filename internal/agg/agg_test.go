package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

var sch = tuple.NewSchema("S",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "g", Kind: tuple.KindInt},
	tuple.Field{Name: "v", Kind: tuple.KindFloat},
)

func row(ts, g int64, v float64) stream.Element {
	return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(g), tuple.Float(v)))
}

func mustFn(t *testing.T, name string, approx bool) *Func {
	t.Helper()
	f, err := Lookup(name, approx)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("frobnicate", false); err == nil {
		t.Error("unknown aggregate accepted")
	}
}

func TestClassTaxonomy(t *testing.T) {
	want := map[string]Class{
		"count": Distributive, "sum": Distributive, "min": Distributive, "max": Distributive,
		"avg": Algebraic, "stddev": Algebraic,
		"count_distinct": Holistic, "median": Holistic,
	}
	for name, cls := range want {
		f := mustFn(t, name, false)
		if f.Class != cls {
			t.Errorf("%s class = %v, want %v", name, f.Class, cls)
		}
	}
	for _, c := range []Class{Distributive, Algebraic, Holistic} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}

func TestAggStates(t *testing.T) {
	add := func(st State, vals ...float64) State {
		for _, v := range vals {
			st.Add(tuple.Float(v))
		}
		return st
	}
	if v, _ := add(mustFn(t, "count", false).New(), 1, 2, 3).Result().AsInt(); v != 3 {
		t.Errorf("count = %d", v)
	}
	if v, _ := add(mustFn(t, "sum", false).New(), 1, 2, 3).Result().AsFloat(); v != 6 {
		t.Errorf("sum = %v", v)
	}
	if v, _ := add(mustFn(t, "min", false).New(), 3, 1, 2).Result().AsFloat(); v != 1 {
		t.Errorf("min = %v", v)
	}
	if v, _ := add(mustFn(t, "max", false).New(), 3, 1, 2).Result().AsFloat(); v != 3 {
		t.Errorf("max = %v", v)
	}
	if v, _ := add(mustFn(t, "avg", false).New(), 1, 2, 3).Result().AsFloat(); v != 2 {
		t.Errorf("avg = %v", v)
	}
	if v, _ := add(mustFn(t, "stddev", false).New(), 2, 4).Result().AsFloat(); v != 1 {
		t.Errorf("stddev = %v", v)
	}
	if v, _ := add(mustFn(t, "median", false).New(), 9, 1, 5).Result().AsFloat(); v != 5 {
		t.Errorf("median = %v", v)
	}
	st := mustFn(t, "count_distinct", false).New()
	for _, v := range []int64{1, 2, 2, 3, 3, 3} {
		st.Add(tuple.Int(v))
	}
	if v, _ := st.Result().AsInt(); v != 3 {
		t.Errorf("count_distinct = %d", v)
	}
}

func TestAggEmptyResults(t *testing.T) {
	for _, name := range []string{"sum", "avg", "min", "max", "median"} {
		if !mustFn(t, name, false).New().Result().IsNull() {
			t.Errorf("%s of empty not NULL", name)
		}
	}
	if v, _ := mustFn(t, "count", false).New().Result().AsInt(); v != 0 {
		t.Error("count of empty != 0")
	}
	if mustFn(t, "stddev", false).New().Result().IsNull() != true {
		t.Error("stddev of empty not NULL")
	}
}

func TestMergeMatchesSingleState(t *testing.T) {
	// Property: splitting a stream and merging partial states equals
	// aggregating the whole stream (distributive/algebraic/holistic-exact).
	f := func(raw []float64, split uint8) bool {
		if len(raw) == 0 {
			return true
		}
		// Keep values finite and modest so float error stays comparable
		// and stddev's sum-of-squares cannot overflow to Inf.
		xs := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			xs[i] = math.Mod(x, 1e6)
		}
		cut := int(split) % len(xs)
		for _, name := range []string{"count", "sum", "min", "max", "avg", "stddev", "median", "count_distinct"} {
			fn, _ := Lookup(name, false)
			whole, a, b := fn.New(), fn.New(), fn.New()
			for i, x := range xs {
				v := tuple.Float(x)
				whole.Add(v)
				if i < cut {
					a.Add(v)
				} else {
					b.Add(v)
				}
			}
			if err := a.Merge(b); err != nil {
				return false
			}
			w, m := whole.Result(), a.Result()
			if w.IsNull() != m.IsNull() {
				return false
			}
			if !w.IsNull() {
				wf, _ := w.AsFloat()
				mf, _ := m.AsFloat()
				if math.Abs(wf-mf) > 1e-9*(1+math.Abs(wf)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestApproxStatesRefuseToMerge(t *testing.T) {
	for _, name := range []string{"median", "count_distinct"} {
		fn := mustFn(t, name, true)
		a, b := fn.New(), fn.New()
		a.Add(tuple.Float(1))
		if err := a.Merge(b); err == nil {
			t.Errorf("approx %s merged", name)
		}
	}
}

func TestApproxAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	med := mustFn(t, "median", true).New()
	cd := mustFn(t, "count_distinct", true).New()
	for i := 0; i < 20000; i++ {
		med.Add(tuple.Float(rng.NormFloat64()*10 + 100))
		cd.Add(tuple.Int(rng.Int63n(3000)))
	}
	if m, _ := med.Result().AsFloat(); math.Abs(m-100) > 2 {
		t.Errorf("approx median = %v, want ~100", m)
	}
	if d, _ := cd.Result().AsInt(); d < 1800 || d > 4500 {
		t.Errorf("approx distinct = %d, want ~2859", d)
	}
}

func newGroupBy(t *testing.T, spec window.Spec, having func(*tuple.Schema) (expr.Expr, error)) *GroupBy {
	t.Helper()
	cnt := mustFn(t, "count", false)
	sum := mustFn(t, "sum", false)
	g, err := NewGroupBy("q", sch,
		[]expr.Expr{expr.MustColumn(sch, "g")}, []string{"g"},
		[]Spec{
			{Fn: cnt, Name: "cnt"},
			{Fn: sum, Arg: expr.MustColumn(sch, "v"), Name: "total"},
		}, spec, having)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func drainOp(g *GroupBy, elems ...stream.Element) []*tuple.Tuple {
	var out []*tuple.Tuple
	emit := func(e stream.Element) { out = append(out, e.Tuple) }
	for _, e := range elems {
		g.Push(0, e, emit)
	}
	g.Flush(emit)
	return out
}

func TestGroupByTumbling(t *testing.T) {
	g := newGroupBy(t, window.Tumbling(10), nil)
	out := drainOp(g,
		row(1, 1, 1), row(2, 1, 2), row(3, 2, 5),
		row(11, 1, 10), // closes window [0,10)
	)
	// Window [0,10): groups 1 (cnt 2, sum 3) and 2 (cnt 1, sum 5);
	// then flush emits window [10,20): group 1 (cnt 1, sum 10).
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	// Sorted by group key within a window.
	if v, _ := out[0].Vals[1].AsInt(); v != 1 {
		t.Errorf("first group = %d", v)
	}
	if c, _ := out[0].Vals[2].AsInt(); c != 2 {
		t.Errorf("count = %d", c)
	}
	if s, _ := out[1].Vals[3].AsFloat(); s != 5 {
		t.Errorf("sum = %v", s)
	}
	if g.Emitted() != 3 {
		t.Errorf("Emitted = %d", g.Emitted())
	}
}

func TestGroupBySlidingCountsOverlap(t *testing.T) {
	// range 20 slide 10: each tuple lands in 2 windows.
	g := newGroupBy(t, window.Time(20, 10), nil)
	out := drainOp(g, row(5, 1, 1), row(25, 1, 1))
	// Tuple@5 lands in [0,20) (its [-10,10) instance starts before the
	// stream and is skipped); tuple@25 lands in [10,30) and [20,40).
	counts := map[int64]int64{}
	for _, o := range out {
		wend, _ := o.Vals[0].AsTime()
		c, _ := o.Vals[2].AsInt()
		counts[wend] = c
	}
	if counts[20] != 1 || counts[30] != 1 || counts[40] != 1 || len(counts) != 3 {
		t.Errorf("window counts = %v", counts)
	}
}

func TestGroupByPunctuationCloses(t *testing.T) {
	g := newGroupBy(t, window.Tumbling(10), nil)
	var out []*tuple.Tuple
	emit := func(e stream.Element) { out = append(out, e.Tuple) }
	g.Push(0, row(1, 1, 1), emit)
	if len(out) != 0 {
		t.Fatal("emitted before window closed")
	}
	g.Push(0, stream.Punct(stream.ProgressPunct(10, 0, tuple.Time(10))), emit)
	if len(out) != 1 {
		t.Fatalf("punctuation did not close window: %v", out)
	}
}

func TestGroupByHaving(t *testing.T) {
	// HAVING cnt > 1 (slide 13's "having count(*) > 5" pattern).
	having := func(out *tuple.Schema) (expr.Expr, error) {
		return expr.NewBin(expr.OpGt, expr.MustColumn(out, "cnt"), expr.Constant(tuple.Int(1)))
	}
	g := newGroupBy(t, window.Tumbling(10), having)
	out := drainOp(g, row(1, 1, 1), row(2, 1, 1), row(3, 2, 1))
	if len(out) != 1 {
		t.Fatalf("HAVING kept %d groups", len(out))
	}
	if v, _ := out[0].Vals[1].AsInt(); v != 1 {
		t.Errorf("kept group %d", v)
	}
}

func TestGroupByUnboundedEmitsOnFlush(t *testing.T) {
	g := newGroupBy(t, window.Spec{}, nil)
	var out []*tuple.Tuple
	emit := func(e stream.Element) { out = append(out, e.Tuple) }
	g.Push(0, row(1, 1, 2), emit)
	g.Push(0, row(1000, 1, 3), emit)
	if len(out) != 0 {
		t.Fatal("unbounded aggregate emitted early")
	}
	g.Flush(emit)
	if len(out) != 1 {
		t.Fatalf("flush emitted %d", len(out))
	}
	if s, _ := out[0].Vals[3].AsFloat(); s != 5 {
		t.Errorf("sum = %v", s)
	}
}

func TestGroupByLandmark(t *testing.T) {
	// Agglomerative window emitting every 10 units: counts accumulate.
	cnt := mustFn(t, "count", false)
	g, err := NewGroupBy("lm", sch, nil, nil,
		[]Spec{{Fn: cnt, Name: "cnt"}}, window.Landmark(10), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := drainOp(g, row(1, 1, 1), row(5, 1, 1), row(12, 1, 1), row(21, 1, 1))
	// Boundary at 10: landmark window [0,10) emits cnt=2; at 20: [0,20) cnt=3; flush: cnt=4.
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	c0, _ := out[0].Vals[1].AsInt()
	c1, _ := out[1].Vals[1].AsInt()
	c2, _ := out[2].Vals[1].AsInt()
	if c0 != 2 || c1 != 3 || c2 != 4 {
		t.Errorf("landmark counts = %d, %d, %d; want 2, 3, 4", c0, c1, c2)
	}
}

func TestGroupByValidation(t *testing.T) {
	cnt := mustFn(t, "count", false)
	sum := mustFn(t, "sum", false)
	if _, err := NewGroupBy("q", sch, []expr.Expr{expr.MustColumn(sch, "g")}, nil,
		[]Spec{{Fn: cnt, Name: "c"}}, window.Spec{}, nil); err == nil {
		t.Error("name/expr mismatch accepted")
	}
	if _, err := NewGroupBy("q", sch, nil, nil,
		[]Spec{{Fn: sum, Name: "s"}}, window.Spec{}, nil); err == nil {
		t.Error("sum without argument accepted")
	}
	if _, err := NewGroupBy("q", sch, nil, nil,
		[]Spec{{Fn: cnt, Name: "c"}}, window.Time(0, 0), nil); err == nil {
		t.Error("invalid window accepted")
	}
	bad := func(out *tuple.Schema) (expr.Expr, error) {
		return expr.MustColumn(out, "c"), nil // INT, not BOOL
	}
	if _, err := NewGroupBy("q", sch, nil, nil,
		[]Spec{{Fn: cnt, Name: "c"}}, window.Spec{}, bad); err == nil {
		t.Error("non-boolean HAVING accepted")
	}
}

func TestGroupByMaxGroupsTracksCardinality(t *testing.T) {
	g := newGroupBy(t, window.Tumbling(1000), nil)
	emit := func(stream.Element) {}
	for i := int64(0); i < 100; i++ {
		g.Push(0, row(i, i, 1), emit) // every tuple a new group
	}
	if g.MaxGroups() < 100 {
		t.Errorf("MaxGroups = %d, want >= 100", g.MaxGroups())
	}
	if g.MemSize() <= 128 {
		t.Error("MemSize ignores groups")
	}
	g.Flush(emit)
}

func TestPartialFinalEquivalence(t *testing.T) {
	// Property: partial aggregation through a tiny slot table followed by
	// final aggregation equals direct aggregation, for any input order.
	rng := rand.New(rand.NewSource(13))
	gcol := expr.MustColumn(sch, "g")
	vcol := expr.MustColumn(sch, "v")
	mkSpecs := func() []Spec {
		return []Spec{
			{Fn: mustFn(t, "count", false), Name: "cnt"},
			{Fn: mustFn(t, "sum", false), Arg: vcol, Name: "total"},
			{Fn: mustFn(t, "avg", false), Arg: vcol, Name: "mean"},
			{Fn: mustFn(t, "min", false), Arg: vcol, Name: "lo"},
			{Fn: mustFn(t, "max", false), Arg: vcol, Name: "hi"},
		}
	}
	pa, err := NewPartialAgg("lfta", sch, []expr.Expr{gcol}, []string{"g"}, mkSpecs(), 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := NewFinalAgg("hfta", pa)
	if err != nil {
		t.Fatal(err)
	}

	// Direct reference computation.
	type ref struct {
		cnt    int64
		sum    float64
		lo, hi float64
	}
	truth := map[int64]map[int64]*ref{} // bucket -> group -> ref

	var finals []*tuple.Tuple
	emitFinal := func(e stream.Element) { finals = append(finals, e.Tuple) }
	emitPartial := func(e stream.Element) { fa.Push(0, e, emitFinal) }

	for i := 0; i < 3000; i++ {
		ts := int64(i)
		grp := rng.Int63n(40) // 40 groups through 4 slots: heavy eviction
		v := rng.Float64() * 100
		pa.Push(0, row(ts, grp, v), emitPartial)
		bucket := (ts / 100) * 100
		if truth[bucket] == nil {
			truth[bucket] = map[int64]*ref{}
		}
		r := truth[bucket][grp]
		if r == nil {
			r = &ref{lo: math.Inf(1), hi: math.Inf(-1)}
			truth[bucket][grp] = r
		}
		r.cnt++
		r.sum += v
		if v < r.lo {
			r.lo = v
		}
		if v > r.hi {
			r.hi = v
		}
	}
	pa.Flush(emitPartial)
	fa.Flush(emitFinal)

	absorbed, emitted, evictions := pa.Stats()
	if absorbed != 3000 || emitted == 0 || evictions == 0 {
		t.Fatalf("stats: absorbed=%d emitted=%d evictions=%d", absorbed, emitted, evictions)
	}
	// Verify every final row against the reference.
	seen := 0
	for _, f := range finals {
		bucket, _ := f.Vals[0].AsTime()
		grp, _ := f.Vals[1].AsInt()
		r := truth[bucket][grp]
		if r == nil {
			t.Fatalf("unexpected group %d@%d", grp, bucket)
		}
		seen++
		cnt, _ := f.Vals[2].AsInt()
		sum, _ := f.Vals[3].AsFloat()
		mean, _ := f.Vals[4].AsFloat()
		lo, _ := f.Vals[5].AsFloat()
		hi, _ := f.Vals[6].AsFloat()
		if cnt != r.cnt || math.Abs(sum-r.sum) > 1e-6 || math.Abs(mean-r.sum/float64(r.cnt)) > 1e-6 ||
			lo != r.lo || hi != r.hi {
			t.Fatalf("group %d@%d: got (%d, %f, %f, %f, %f), want %+v", grp, bucket, cnt, sum, mean, lo, hi, r)
		}
	}
	want := 0
	for _, groups := range truth {
		want += len(groups)
	}
	if seen != want {
		t.Errorf("final rows = %d, want %d", seen, want)
	}
	if fa.MergeErrors() != 0 {
		t.Errorf("merge errors: %d", fa.MergeErrors())
	}
}

func TestPartialAggRejectsHolistic(t *testing.T) {
	med := mustFn(t, "median", false)
	_, err := NewPartialAgg("p", sch, nil, nil,
		[]Spec{{Fn: med, Arg: expr.MustColumn(sch, "v"), Name: "m"}}, 8, 100)
	if err == nil {
		t.Error("holistic aggregate accepted for partial aggregation")
	}
}

func TestPartialAggBoundedMemory(t *testing.T) {
	cnt := mustFn(t, "count", false)
	pa, err := NewPartialAgg("p", sch, []expr.Expr{expr.MustColumn(sch, "g")}, []string{"g"},
		[]Spec{{Fn: cnt, Name: "c"}}, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(stream.Element) {}
	base := pa.MemSize()
	for i := int64(0); i < 10000; i++ {
		pa.Push(0, row(i, i, 1), emit)
	}
	if pa.MemSize() > base*4 {
		t.Errorf("low-level memory grew: %d -> %d", base, pa.MemSize())
	}
}

func TestPartialAggValidation(t *testing.T) {
	cnt := mustFn(t, "count", false)
	if _, err := NewPartialAgg("p", sch, nil, nil, []Spec{{Fn: cnt, Name: "c"}}, 0, 0); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := NewPartialAgg("p", sch, []expr.Expr{expr.MustColumn(sch, "g")}, nil,
		[]Spec{{Fn: cnt, Name: "c"}}, 4, 0); err == nil {
		t.Error("group name mismatch accepted")
	}
}
