package streamdb

import (
	"testing"
)

func contEngine(t *testing.T) *Engine {
	t.Helper()
	eng := New()
	eng.RegisterSchema("Traffic", trafficSchema())
	return eng
}

func tupleAt(ts int64, ip uint32, length uint64) *Tuple {
	return NewTuple(ts, Time(ts), IP(ip), Uint(length))
}

func TestContinuousFilterStreamsIncrementally(t *testing.T) {
	eng := contEngine(t)
	var got []uint64
	cq, err := eng.RegisterContinuous(
		"select srcIP, length from Traffic where length > 100",
		func(tp *Tuple) {
			v, _ := tp.Vals[1].AsUint()
			got = append(got, v)
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := cq.Feed("Traffic", tupleAt(1, 1, 50)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("filtered tuple emitted")
	}
	if err := cq.Feed("Traffic", tupleAt(2, 1, 200)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 200 {
		t.Fatalf("got = %v (results must arrive per Feed, not at Close)", got)
	}
	cq.Close()
	if len(got) != 1 {
		t.Errorf("close produced extra results: %v", got)
	}
}

func TestContinuousWindowedAggregateClosesOnAdvance(t *testing.T) {
	eng := contEngine(t)
	var counts []int64
	cq, err := eng.RegisterContinuous(
		"select srcIP, count(*) as c from Traffic [range 10] group by srcIP",
		func(tp *Tuple) {
			c, _ := tp.Vals[1].AsInt()
			counts = append(counts, c)
		})
	if err != nil {
		t.Fatal(err)
	}
	cq.Feed("Traffic", tupleAt(1*Second, 1, 10))
	cq.Feed("Traffic", tupleAt(2*Second, 1, 10))
	if len(counts) != 0 {
		t.Fatal("window emitted early")
	}
	// Progress punctuation past the window boundary closes it.
	if err := cq.Advance("Traffic", 10*Second); err != nil {
		t.Fatal(err)
	}
	if len(counts) != 1 || counts[0] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	// More data in the next window, flushed by Close.
	cq.Feed("Traffic", tupleAt(11*Second, 2, 10))
	cq.Close()
	if len(counts) != 2 || counts[1] != 1 {
		t.Fatalf("final counts = %v", counts)
	}
}

func TestContinuousErrors(t *testing.T) {
	eng := contEngine(t)
	if _, err := eng.RegisterContinuous("select * from Traffic", nil); err == nil {
		t.Error("nil sink accepted")
	}
	if _, err := eng.RegisterContinuous("not sql", func(*Tuple) {}); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := eng.RegisterContinuous("select * from Nowhere", func(*Tuple) {}); err == nil {
		t.Error("unknown stream accepted")
	}
	cq, err := eng.RegisterContinuous("select * from Traffic", func(*Tuple) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := cq.Feed("Other", tupleAt(1, 1, 1)); err == nil {
		t.Error("feeding unknown stream accepted")
	}
	if err := cq.Advance("Other", 1); err == nil {
		t.Error("advancing unknown stream accepted")
	}
	cq.Close()
	cq.Close() // idempotent
	if err := cq.Feed("Traffic", tupleAt(1, 1, 1)); err == nil {
		t.Error("feed after close accepted")
	}
	if err := cq.Advance("Traffic", 1); err == nil {
		t.Error("advance after close accepted")
	}
	if cq.Plan() == nil {
		t.Error("plan missing")
	}
}

func TestContinuousMultipleQueriesIndependent(t *testing.T) {
	eng := contEngine(t)
	var a, b int
	q1, err := eng.RegisterContinuous("select * from Traffic where length > 100", func(*Tuple) { a++ })
	if err != nil {
		t.Fatal(err)
	}
	q2, err := eng.RegisterContinuous("select * from Traffic where length > 500", func(*Tuple) { b++ })
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		tp := tupleAt(i, 1, uint64(i*100))
		q1.Feed("Traffic", tp)
		q2.Feed("Traffic", tp)
	}
	if a != 8 || b != 4 {
		t.Errorf("a = %d (want 8), b = %d (want 4)", a, b)
	}
}

func TestContinuousJoin(t *testing.T) {
	eng := New()
	synSch := NewSchema("Syn",
		Field{Name: "time", Kind: KindTime, Ordering: true},
		Field{Name: "ip", Kind: KindIP},
	)
	ackSch := NewSchema("Ack",
		Field{Name: "time", Kind: KindTime, Ordering: true},
		Field{Name: "ip", Kind: KindIP},
	)
	eng.RegisterSchema("Syn", synSch)
	eng.RegisterSchema("Ack", ackSch)
	var rtts []int64
	cq, err := eng.RegisterContinuous(
		"select Ack.time - Syn.time as rtt from Syn [range 30], Ack [range 30] where Syn.ip = Ack.ip",
		func(tp *Tuple) {
			v, _ := tp.Vals[0].AsInt()
			rtts = append(rtts, v)
		})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ts int64, ip uint32) *Tuple { return NewTuple(ts, Time(ts), IP(ip)) }
	cq.Feed("Syn", mk(1*Second, 7))
	cq.Feed("Ack", mk(3*Second, 7))
	if len(rtts) != 1 || rtts[0] != 2*Second {
		t.Fatalf("rtts = %v", rtts)
	}
	cq.Close()
}
