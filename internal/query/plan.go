package query

import (
	"fmt"
	"strings"

	"streamdb/internal/agg"
	"streamdb/internal/exec"
	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// Plan is a compiled query: a recipe for wiring operators into an
// execution graph, plus the analysis results the tutorial highlights
// (bounded-memory verdict, streamability).
type Plan struct {
	Q          *Query
	OutSchema  *tuple.Schema
	Bounded    BoundedMemory
	Streamable bool
	IsJoin     bool
	IsAgg      bool
	steps      []string
	build      func(g *exec.Graph, sources map[string]stream.Source) error
}

// Explain renders the physical plan.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for: %s\n", p.Q.Text)
	for i, s := range p.steps {
		fmt.Fprintf(&b, "  %d. %s\n", i+1, s)
	}
	fmt.Fprintf(&b, "  bounded-memory: %v (%s)\n", p.Bounded.OK, strings.Join(p.Bounded.Reasons, "; "))
	return b.String()
}

// Build wires the plan into an execution graph. sources maps stream
// names (as written in FROM) to their sources.
func (p *Plan) Build(g *exec.Graph, sources map[string]stream.Source) error {
	return p.build(g, sources)
}

// Run compiles and executes a query over the given sources, returning
// up to limit result tuples (limit < 0 = all, sources must be finite).
func Run(text string, cat *Catalog, sources map[string]stream.Source, limit int) ([]*tuple.Tuple, *Plan, error) {
	q, err := Parse(text)
	if err != nil {
		return nil, nil, err
	}
	plan, err := Compile(q, cat)
	if err != nil {
		return nil, nil, err
	}
	var out []*tuple.Tuple
	g := exec.NewGraph(func(e stream.Element) {
		if !e.IsPunct() && (limit < 0 || len(out) < limit) {
			out = append(out, e.Tuple)
		}
	})
	if err := plan.Build(g, sources); err != nil {
		return nil, nil, err
	}
	g.Run(-1)
	return out, plan, nil
}

// Compile analyzes and plans a parsed query.
func Compile(q *Query, cat *Catalog) (*Plan, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("query: FROM is required")
	}
	var streams []*boundStream
	offset := 0
	for _, fi := range q.From {
		sch, ok := cat.Lookup(fi.Stream)
		if !ok {
			return nil, fmt.Errorf("query: unknown stream %q", fi.Stream)
		}
		streams = append(streams, &boundStream{item: fi, schema: sch, offset: offset})
		offset += sch.Arity()
	}

	hasAggs := queryHasAggregates(q)
	switch {
	case len(q.From) == 2 && !hasAggs && len(q.GroupBy) == 0:
		return compileJoin(q, streams)
	case len(q.From) == 2:
		return nil, fmt.Errorf("query: aggregation over joins is not supported in one query; compose two queries")
	case hasAggs || len(q.GroupBy) > 0:
		return compileAggregate(q, streams)
	default:
		return compileSimple(q, streams)
	}
}

func queryHasAggregates(q *Query) bool {
	found := false
	var walk func(n Node)
	walk = func(n Node) {
		switch v := n.(type) {
		case *CallExpr:
			if _, err := agg.Lookup(v.Name, false); err == nil {
				found = true
				return
			}
			for _, a := range v.Args {
				walk(a)
			}
		case *BinExpr:
			walk(v.L)
			walk(v.R)
		case *NotExpr:
			walk(v.E)
		case *NegExpr:
			walk(v.E)
		case *IsNullExpr:
			walk(v.E)
		}
	}
	for _, it := range q.Select {
		if it.Expr != nil {
			walk(it.Expr)
		}
	}
	if q.Having != nil {
		walk(q.Having)
	}
	return found
}

// itemName derives an output column name.
func itemName(it SelectItem, i int) string {
	if it.As != "" {
		return it.As
	}
	if id, ok := it.Expr.(*Ident); ok {
		return id.Name
	}
	return fmt.Sprintf("col%d", i)
}

// compileSimple plans select/project queries (slide 29).
func compileSimple(q *Query, streams []*boundStream) (*Plan, error) {
	s := streams[0]
	b := &binder{streams: streams}
	var pred expr.Expr
	if q.Where != nil {
		e, err := b.bind(q.Where)
		if err != nil {
			return nil, err
		}
		if e.Kind() != tuple.KindBool {
			return nil, fmt.Errorf("query: WHERE must be boolean")
		}
		pred = e
	}
	if q.Having != nil {
		return nil, fmt.Errorf("query: HAVING without GROUP BY")
	}

	star := len(q.Select) == 1 && q.Select[0].Star
	var exprs []expr.Expr
	var fields []tuple.Field
	if !star {
		for i, it := range q.Select {
			if it.Star {
				return nil, fmt.Errorf("query: * must be the only select item")
			}
			e, err := b.bind(it.Expr)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, e)
			fields = append(fields, tuple.Field{Name: itemName(it, i), Kind: e.Kind()})
		}
	}
	var outSchema *tuple.Schema
	if star {
		outSchema = s.schema
	} else {
		outSchema = tuple.NewSchema("result", fields...)
	}

	plan := &Plan{Q: q, OutSchema: outSchema, Bounded: BoundedMemory{OK: true,
		Reasons: []string{"per-element operators only"}}, Streamable: true}
	if pred != nil {
		plan.steps = append(plan.steps, fmt.Sprintf("select %s", pred))
	}
	if !star {
		plan.steps = append(plan.steps, fmt.Sprintf("project %d columns", len(exprs)))
	}
	if q.Distinct {
		plan.steps = append(plan.steps, "duplicate-eliminate (windowed)")
	}
	winLen := int64(0)
	if s.item.HasWindow && s.item.Window.Kind == window.KindTime {
		winLen = s.item.Window.Range
	}

	plan.build = func(g *exec.Graph, sources map[string]stream.Source) error {
		src, ok := sources[s.item.Stream]
		if !ok {
			return fmt.Errorf("query: no source for stream %q", s.item.Stream)
		}
		si := g.AddSource(src)
		var last exec.NodeID = -1
		connect := func(id exec.NodeID) error {
			if last < 0 {
				return g.ConnectSource(si, id, 0)
			}
			return g.Connect(last, id, 0)
		}
		if pred != nil {
			op, err := ops.NewSelect("where", s.schema, pred, -1, 1)
			if err != nil {
				return err
			}
			id := g.AddOp(op)
			if err := connect(id); err != nil {
				return err
			}
			last = id
		}
		if !star {
			op, err := ops.NewProject("project", outSchema, exprs)
			if err != nil {
				return err
			}
			id := g.AddOp(op)
			if err := connect(id); err != nil {
				return err
			}
			last = id
		}
		if q.Distinct {
			keys := make([]int, outSchema.Arity())
			for i := range keys {
				keys[i] = i
			}
			id := g.AddOp(ops.NewDupElim("distinct", outSchema, keys, winLen))
			if err := connect(id); err != nil {
				return err
			}
			last = id
		}
		if last < 0 {
			// SELECT * FROM s with no predicates: pass through a no-op
			// filter so the graph has a node to connect.
			op, err := ops.NewSelect("pass", s.schema, expr.Constant(tuple.Bool(true)), 1, 1)
			if err != nil {
				return err
			}
			id := g.AddOp(op)
			if err := g.ConnectSource(si, id, 0); err != nil {
				return err
			}
			last = id
		}
		return g.ConnectOut(last)
	}
	return plan, nil
}

// groupItemName derives the output name of a GROUP BY item.
func groupItemName(gi GroupItem, i int) string {
	if gi.As != "" {
		return gi.As
	}
	if id, ok := gi.Expr.(*Ident); ok {
		return id.Name
	}
	return fmt.Sprintf("g%d", i)
}

// rewriteForOutput replaces aggregate calls and group expressions in a
// SELECT/HAVING AST with references to the aggregation output columns.
func rewriteForOutput(n Node, groups []GroupItem, groupNames []string, aggNames map[string]string) Node {
	// Whole-node matches first.
	r := Render(n)
	for i, gi := range groups {
		if Render(gi.Expr) == r {
			return &Ident{Name: groupNames[i]}
		}
		if id, ok := n.(*Ident); ok && id.Qualifier == "" && id.Name == groupNames[i] {
			return n
		}
	}
	if name, ok := aggNames[strings.ToLower(r)]; ok {
		if _, isCall := n.(*CallExpr); isCall {
			return &Ident{Name: name}
		}
	}
	switch v := n.(type) {
	case *BinExpr:
		return &BinExpr{Op: v.Op,
			L: rewriteForOutput(v.L, groups, groupNames, aggNames),
			R: rewriteForOutput(v.R, groups, groupNames, aggNames)}
	case *NotExpr:
		return &NotExpr{E: rewriteForOutput(v.E, groups, groupNames, aggNames)}
	case *NegExpr:
		return &NegExpr{E: rewriteForOutput(v.E, groups, groupNames, aggNames)}
	case *IsNullExpr:
		return &IsNullExpr{E: rewriteForOutput(v.E, groups, groupNames, aggNames), Negate: v.Negate}
	case *CallExpr:
		args := make([]Node, len(v.Args))
		for i, a := range v.Args {
			args[i] = rewriteForOutput(a, groups, groupNames, aggNames)
		}
		return &CallExpr{Name: v.Name, Args: args, Star: v.Star}
	}
	return n
}

// compileAggregate plans windowed grouped aggregation (slides 34-38).
func compileAggregate(q *Query, streams []*boundStream) (*Plan, error) {
	s := streams[0]
	if q.Distinct {
		return nil, fmt.Errorf("query: DISTINCT with aggregation is not supported")
	}

	inputBinder := &binder{streams: streams}
	var pred expr.Expr
	if q.Where != nil {
		e, err := inputBinder.bind(q.Where)
		if err != nil {
			return nil, err
		}
		if e.Kind() != tuple.KindBool {
			return nil, fmt.Errorf("query: WHERE must be boolean")
		}
		pred = e
	}

	// Bind grouping expressions against the input.
	groupNames := make([]string, len(q.GroupBy))
	groupExprs := make([]expr.Expr, len(q.GroupBy))
	groupASTs := make([]Node, len(q.GroupBy))
	for i, gi := range q.GroupBy {
		e, err := inputBinder.bind(gi.Expr)
		if err != nil {
			return nil, err
		}
		groupExprs[i] = e
		groupNames[i] = groupItemName(gi, i)
		groupASTs[i] = gi.Expr
	}

	// Collect aggregate calls from SELECT and HAVING. Only the calls are
	// bound here (their arguments reference the input schema); the
	// surrounding expressions are bound later against the aggregation
	// output, where grouping aliases like "tb" become real columns.
	aggBinder := &binder{streams: streams, approx: q.Approx}
	for _, it := range q.Select {
		if it.Star {
			return nil, fmt.Errorf("query: * is not valid with GROUP BY")
		}
		if err := collectAggs(it.Expr, aggBinder); err != nil {
			return nil, err
		}
	}
	if q.Having != nil {
		if err := collectAggs(q.Having, aggBinder); err != nil {
			return nil, err
		}
	}
	if len(aggBinder.aggSpecs) == 0 {
		return nil, fmt.Errorf("query: GROUP BY without aggregates; use SELECT DISTINCT")
	}
	aggNames := make(map[string]string, len(aggBinder.aggCalls))
	for i, c := range aggBinder.aggCalls {
		aggNames[strings.ToLower(Render(c))] = aggBinder.aggNames[i]
	}

	// Window from the FROM item (time windows only for aggregation).
	spec := window.Spec{}
	if s.item.HasWindow {
		spec = s.item.Window
		if spec.Kind == window.KindRows {
			return nil, fmt.Errorf("query: row windows are not supported for aggregation")
		}
	}

	havingBuilder := func(out *tuple.Schema) (expr.Expr, error) {
		if q.Having == nil {
			return nil, nil
		}
		rewritten := rewriteForOutput(q.Having, q.GroupBy, groupNames, aggNames)
		hb := &binder{streams: []*boundStream{{
			item:   FromItem{Stream: out.Name},
			schema: out,
		}}}
		return hb.bind(rewritten)
	}

	gb, err := agg.NewGroupBy("aggregate", s.schema, groupExprs, groupNames,
		aggBinder.aggSpecs, spec, havingBuilder)
	if err != nil {
		return nil, err
	}
	gbOut := gb.OutSchema()

	// Final projection: SELECT items over the aggregation output.
	outBinder := &binder{streams: []*boundStream{{
		item:   FromItem{Stream: gbOut.Name},
		schema: gbOut,
	}}}
	var exprs []expr.Expr
	var fields []tuple.Field
	for i, it := range q.Select {
		rewritten := rewriteForOutput(it.Expr, q.GroupBy, groupNames, aggNames)
		e, err := outBinder.bind(rewritten)
		if err != nil {
			return nil, fmt.Errorf("query: select item %d must be a grouping expression or aggregate: %w", i, err)
		}
		exprs = append(exprs, e)
		fields = append(fields, tuple.Field{Name: itemName(it, i), Kind: e.Kind()})
	}
	outSchema := tuple.NewSchema("result", fields...)

	plan := &Plan{
		Q:          q,
		OutSchema:  outSchema,
		Bounded:    analyzeBoundedMemory(q, streams, groupASTs, aggBinder.aggSpecs),
		Streamable: streamable(groupASTs, streams),
		IsAgg:      true,
	}
	if pred != nil {
		plan.steps = append(plan.steps, fmt.Sprintf("select %s", pred))
	}
	plan.steps = append(plan.steps,
		fmt.Sprintf("group-by %v window %s aggregates %d", groupNames, spec, len(aggBinder.aggSpecs)),
		"project result columns")

	plan.build = func(g *exec.Graph, sources map[string]stream.Source) error {
		src, ok := sources[s.item.Stream]
		if !ok {
			return fmt.Errorf("query: no source for stream %q", s.item.Stream)
		}
		si := g.AddSource(src)
		var last exec.NodeID = -1
		connect := func(id exec.NodeID) error {
			if last < 0 {
				return g.ConnectSource(si, id, 0)
			}
			return g.Connect(last, id, 0)
		}
		if pred != nil {
			op, err := ops.NewSelect("where", s.schema, pred, -1, 1)
			if err != nil {
				return err
			}
			id := g.AddOp(op)
			if err := connect(id); err != nil {
				return err
			}
			last = id
		}
		gbID := g.AddOp(gb)
		if err := connect(gbID); err != nil {
			return err
		}
		last = gbID
		proj, err := ops.NewProject("project", outSchema, exprs)
		if err != nil {
			return err
		}
		pid := g.AddOp(proj)
		if err := g.Connect(last, pid, 0); err != nil {
			return err
		}
		return g.ConnectOut(pid)
	}
	return plan, nil
}

// compileJoin plans binary windowed joins (slides 30-33), with
// single-side predicates pushed below the join.
func compileJoin(q *Query, streams []*boundStream) (*Plan, error) {
	left, right := streams[0], streams[1]
	if q.Distinct {
		return nil, fmt.Errorf("query: DISTINCT over joins is not supported")
	}
	lb := &binder{streams: []*boundStream{{item: left.item, schema: left.schema}}}
	rb := &binder{streams: []*boundStream{{item: right.item, schema: right.schema}}}
	both := &binder{streams: streams}

	var leftKey, rightKey []int
	var pushLeft, pushRight, residual []expr.Expr
	for _, conj := range conjuncts(q.Where) {
		// Equi-join conjunct?
		if be, ok := conj.(*BinExpr); ok && be.Op == "=" {
			lid, lok := be.L.(*Ident)
			rid, rok := be.R.(*Ident)
			if lok && rok {
				le, errL := lb.resolve(lid)
				re, errR := rb.resolve(rid)
				if errL == nil && errR == nil {
					leftKey = append(leftKey, le.(*expr.Col).Index)
					rightKey = append(rightKey, re.(*expr.Col).Index)
					continue
				}
				// Mirrored: right stream column = left stream column.
				le2, errL2 := lb.resolve(rid)
				re2, errR2 := rb.resolve(lid)
				if errL2 == nil && errR2 == nil {
					leftKey = append(leftKey, le2.(*expr.Col).Index)
					rightKey = append(rightKey, re2.(*expr.Col).Index)
					continue
				}
			}
		}
		// Single-side pushdown?
		if e, err := lb.bind(conj); err == nil {
			pushLeft = append(pushLeft, e)
			continue
		}
		if e, err := rb.bind(conj); err == nil {
			pushRight = append(pushRight, e)
			continue
		}
		e, err := both.bind(conj)
		if err != nil {
			return nil, err
		}
		residual = append(residual, e)
	}

	var residualPred expr.Expr
	for _, e := range residual {
		if residualPred == nil {
			residualPred = e
		} else {
			combined, err := expr.NewBin(expr.OpAnd, residualPred, e)
			if err != nil {
				return nil, err
			}
			residualPred = combined
		}
	}

	method := ops.JoinHash
	if len(leftKey) == 0 {
		method = ops.JoinNestedLoop
	}
	join, err := ops.NewWindowJoin("join", left.schema, right.schema,
		ops.JoinConfig{Window: left.item.Window, Method: method, Key: leftKey},
		ops.JoinConfig{Window: right.item.Window, Method: method, Key: rightKey},
		residualPred)
	if err != nil {
		return nil, err
	}
	joinOut := join.OutSchema()

	// Bind the select list against the concatenated row using the
	// two-stream binder (qualifier-aware), not the concat schema names.
	star := len(q.Select) == 1 && q.Select[0].Star
	var exprs []expr.Expr
	var fields []tuple.Field
	if !star {
		for i, it := range q.Select {
			if it.Star {
				return nil, fmt.Errorf("query: * must be the only select item")
			}
			e, err := both.bind(it.Expr)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, e)
			fields = append(fields, tuple.Field{Name: itemName(it, i), Kind: e.Kind()})
		}
	}
	outSchema := joinOut
	if !star {
		outSchema = tuple.NewSchema("result", fields...)
	}

	plan := &Plan{
		Q:         q,
		OutSchema: outSchema,
		IsJoin:    true,
		Bounded: BoundedMemory{
			OK: left.item.HasWindow && right.item.HasWindow,
			Reasons: []string{
				"join state is bounded iff both inputs carry windows (slide 30)"},
		},
		Streamable: true,
	}
	plan.steps = append(plan.steps,
		fmt.Sprintf("window join on %d keys, windows %s / %s, %d pushdowns",
			len(leftKey), left.item.Window, right.item.Window, len(pushLeft)+len(pushRight)))

	plan.build = func(g *exec.Graph, sources map[string]stream.Source) error {
		ls, ok := sources[left.item.Stream]
		if !ok {
			return fmt.Errorf("query: no source for stream %q", left.item.Stream)
		}
		rs, ok := sources[right.item.Stream]
		if !ok {
			return fmt.Errorf("query: no source for stream %q", right.item.Stream)
		}
		lsi := g.AddSource(ls)
		rsi := g.AddSource(rs)
		jid := g.AddOp(join)

		wire := func(si int, preds []expr.Expr, sch *tuple.Schema, port int) error {
			if len(preds) == 0 {
				return g.ConnectSource(si, jid, port)
			}
			var last exec.NodeID = -1
			for i, p := range preds {
				op, err := ops.NewSelect(fmt.Sprintf("push%d_%d", port, i), sch, p, -1, 1)
				if err != nil {
					return err
				}
				id := g.AddOp(op)
				if last < 0 {
					if err := g.ConnectSource(si, id, 0); err != nil {
						return err
					}
				} else if err := g.Connect(last, id, 0); err != nil {
					return err
				}
				last = id
			}
			return g.Connect(last, jid, port)
		}
		if err := wire(lsi, pushLeft, left.schema, 0); err != nil {
			return err
		}
		if err := wire(rsi, pushRight, right.schema, 1); err != nil {
			return err
		}
		last := jid
		if !star {
			proj, err := ops.NewProject("project", outSchema, exprs)
			if err != nil {
				return err
			}
			pid := g.AddOp(proj)
			if err := g.Connect(last, pid, 0); err != nil {
				return err
			}
			last = pid
		}
		return g.ConnectOut(last)
	}
	return plan, nil
}

// collectAggs walks an AST registering every aggregate call with the
// binder without binding the surrounding expression.
func collectAggs(n Node, b *binder) error {
	switch v := n.(type) {
	case *CallExpr:
		if fn, err := agg.Lookup(v.Name, b.approx); err == nil {
			return b.bindAggCall(v, fn)
		}
		for _, a := range v.Args {
			if err := collectAggs(a, b); err != nil {
				return err
			}
		}
	case *BinExpr:
		if err := collectAggs(v.L, b); err != nil {
			return err
		}
		return collectAggs(v.R, b)
	case *NotExpr:
		return collectAggs(v.E, b)
	case *NegExpr:
		return collectAggs(v.E, b)
	case *IsNullExpr:
		return collectAggs(v.E, b)
	}
	return nil
}

// conjuncts flattens an AND tree.
func conjuncts(n Node) []Node {
	if n == nil {
		return nil
	}
	if be, ok := n.(*BinExpr); ok && be.Op == "AND" {
		return append(conjuncts(be.L), conjuncts(be.R)...)
	}
	return []Node{n}
}
