package share

import (
	"sort"
	"testing"

	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

var sch = tuple.NewSchema("S",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "v", Kind: tuple.KindInt},
)

func el(ts, v int64) stream.Element {
	return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(v)))
}

func gt(t *testing.T, threshold int64) expr.Expr {
	t.Helper()
	e, err := expr.NewBin(expr.OpGt, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(threshold)))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSharedSelectDeduplicatesPredicates(t *testing.T) {
	s := NewSharedSelect("ss", sch)
	counts := map[int]int{}
	mkSink := func(qid int) ops.Emit {
		return func(stream.Element) { counts[qid]++ }
	}
	// 8 queries, only 2 distinct predicates.
	for i := 0; i < 4; i++ {
		if _, err := s.Register(gt(t, 10), mkSink(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 4; i < 8; i++ {
		if _, err := s.Register(gt(t, 20), mkSink(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.DistinctPredicates() != 2 {
		t.Fatalf("distinct predicates = %d", s.DistinctPredicates())
	}
	for i := int64(0); i < 30; i++ {
		s.Push(0, el(i, i), nil)
	}
	shared, unshared := s.Stats()
	if shared != 30*2 {
		t.Errorf("shared evals = %d, want 60", shared)
	}
	if unshared != 30*8 {
		t.Errorf("unshared evals = %d, want 240", unshared)
	}
	// v > 10 passes 19 tuples (11..29); v > 20 passes 9 (21..29).
	if counts[0] != 19 || counts[7] != 9 {
		t.Errorf("query outputs = %v", counts)
	}
}

func TestSharedSelectPunctuationFansOut(t *testing.T) {
	s := NewSharedSelect("ss", sch)
	got := 0
	if _, err := s.Register(gt(t, 0), func(e stream.Element) {
		if e.IsPunct() {
			got++
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Push(0, stream.Punct(stream.ProgressPunct(1, 0, tuple.Time(1))), nil)
	if got != 1 {
		t.Error("punctuation not forwarded")
	}
}

// Regression: punctuation fan-out used to iterate a map, so delivery
// order across queries was nondeterministic run to run. It must be
// ascending query-ID order.
func TestSharedSelectPunctuationOrderDeterministic(t *testing.T) {
	s := NewSharedSelect("ss", sch)
	var order []int
	var want []int
	for i := 0; i < 32; i++ {
		qid := i
		id, err := s.Register(gt(t, int64(i%4)), func(e stream.Element) {
			if e.IsPunct() {
				order = append(order, qid)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if id != qid {
			t.Fatalf("qid = %d, want %d", id, qid)
		}
		want = append(want, qid)
	}
	for rep := 0; rep < 5; rep++ {
		order = order[:0]
		s.Push(0, stream.Punct(stream.ProgressPunct(1, 0, tuple.Time(1))), nil)
		if len(order) != len(want) {
			t.Fatalf("rep %d: punct reached %d of %d queries", rep, len(order), len(want))
		}
		if !sort.IntsAreSorted(order) {
			t.Fatalf("rep %d: punct delivery order %v not ascending by query ID", rep, order)
		}
	}
}

// Satellite: equivalent predicates spelled differently must share one
// kernel — commuted AND conjunctions and mirrored comparisons.
func TestSharedSelectCanonicalKeysShareKernels(t *testing.T) {
	v := expr.MustColumn(sch, "v")
	ts := expr.MustColumn(sch, "time")
	lit := func(n int64) expr.Expr { return expr.Constant(tuple.Int(n)) }
	bin := func(op expr.BinOp, l, r expr.Expr) expr.Expr {
		e, err := expr.NewBin(op, l, r)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a := bin(expr.OpGt, v, lit(5))                        // v > 5
	b := bin(expr.OpGt, ts, expr.Constant(tuple.Time(3))) // time > 3

	s := NewSharedSelect("ss", sch)
	counts := make([]int, 4)
	reg := func(i int, pred expr.Expr) {
		t.Helper()
		if _, err := s.Register(pred, func(stream.Element) { counts[i]++ }); err != nil {
			t.Fatal(err)
		}
	}
	reg(0, bin(expr.OpAnd, a, b))     // a AND b
	reg(1, bin(expr.OpAnd, b, a))     // b AND a
	reg(2, bin(expr.OpGt, v, lit(5))) // v > 5
	reg(3, bin(expr.OpLt, lit(5), v)) // 5 < v (mirrored spelling)
	if got := s.DistinctPredicates(); got != 2 {
		t.Errorf("distinct predicates = %d, want 2 (canonical dedupe)", got)
	}
	for i := int64(0); i < 20; i++ {
		s.Push(0, el(i, i), nil)
	}
	if counts[0] != counts[1] {
		t.Errorf("commuted AND outputs differ: %d vs %d", counts[0], counts[1])
	}
	if counts[2] != counts[3] {
		t.Errorf("mirrored comparison outputs differ: %d vs %d", counts[2], counts[3])
	}
	if counts[2] != 14 { // v > 5 passes 6..19
		t.Errorf("v > 5 matched %d tuples, want 14", counts[2])
	}
}

// Common-prefix factoring: AND predicates sharing a leading conjunct
// share its kernel node, so the trie is smaller than the total
// conjunct count.
func TestSharedSelectCommonPrefixFactoring(t *testing.T) {
	v := expr.MustColumn(sch, "v")
	lit := func(n int64) expr.Expr { return expr.Constant(tuple.Int(n)) }
	bin := func(op expr.BinOp, l, r expr.Expr) expr.Expr {
		e, err := expr.NewBin(op, l, r)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	// The shared conjunct must lead after canonical ordering (lexical by
	// rendering): "(v > 2)" sorts before every "(v >= 1x)" refinement.
	common := bin(expr.OpGt, v, lit(2))
	s := NewSharedSelect("ss", sch)
	for i := int64(0); i < 4; i++ {
		pred := bin(expr.OpAnd, common, bin(expr.OpGe, v, lit(10+i)))
		if _, err := s.Register(pred, func(stream.Element) {}); err != nil {
			t.Fatal(err)
		}
	}
	// 4 distinct predicates × 2 conjuncts = 8 conjuncts naively; the
	// shared prefix collapses to 1 + 4 = 5 kernel nodes.
	if got := s.KernelNodes(); got != 5 {
		t.Errorf("kernel nodes = %d, want 5 (prefix factoring)", got)
	}
	if got := s.DistinctPredicates(); got != 4 {
		t.Errorf("distinct predicates = %d, want 4", got)
	}
	// The shared prefix is evaluated on every tuple; the refinements
	// only on its survivors.
	for i := int64(0); i < 20; i++ {
		s.Push(0, el(i, i), nil)
	}
	shared, _ := s.Stats()
	// prefix: 20 evals; v>2 passes 17 tuples; 4 refinements × 17.
	if shared != 20+4*17 {
		t.Errorf("shared evals = %d, want %d", shared, 20+4*17)
	}
}

func TestSharedSelectDrop(t *testing.T) {
	s := NewSharedSelect("ss", sch)
	var got0, got1 int
	q0, err := s.Register(gt(t, 5), func(stream.Element) { got0++ })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(gt(t, 10), func(stream.Element) { got1++ }); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		s.Push(0, el(i, i), nil)
	}
	if !s.Drop(q0) {
		t.Fatal("drop of live query failed")
	}
	if s.Drop(q0) {
		t.Error("double drop succeeded")
	}
	mid0, mid1 := got0, got1
	for i := int64(20); i < 40; i++ {
		s.Push(0, el(i, i), nil)
	}
	if got0 != mid0 {
		t.Errorf("dropped query still received %d tuples", got0-mid0)
	}
	if got1 != mid1+20 {
		t.Errorf("co-resident query got %d new tuples, want 20", got1-mid1)
	}
	if s.Queries() != 1 || s.DistinctPredicates() != 1 || s.KernelNodes() != 1 {
		t.Errorf("after drop: queries=%d distinct=%d nodes=%d",
			s.Queries(), s.DistinctPredicates(), s.KernelNodes())
	}
}

func TestSharedSelectRejectsNonBoolean(t *testing.T) {
	s := NewSharedSelect("ss", sch)
	if _, err := s.Register(expr.MustColumn(sch, "v"), func(stream.Element) {}); err == nil {
		t.Error("non-boolean predicate accepted")
	}
	if _, err := s.RegisterSinks(gt(t, 0), Sinks{Col: func(*stream.Batch) {}}); err == nil {
		t.Error("registration without a row sink accepted")
	}
}

func joinSchemas() (*tuple.Schema, *tuple.Schema) {
	a := tuple.NewSchema("A",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt},
	)
	b := tuple.NewSchema("B",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt},
	)
	return a, b
}

func TestSharedWindowJoinRoutesByDistance(t *testing.T) {
	a, b := joinSchemas()
	var narrow, wide []int64
	queries := []JoinQuery{
		{Window: 5, Sink: func(e stream.Element) { narrow = append(narrow, e.Ts()) }},
		{Window: 50, Sink: func(e stream.Element) { wide = append(wide, e.Ts()) }},
	}
	sj, err := NewSharedWindowJoin("sj", a, b, []int{1}, []int{1}, queries)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ts, k int64) stream.Element {
		return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(k)))
	}
	sj.Push(0, mk(0, 7), nil)
	sj.Push(1, mk(3, 7), nil)  // distance 3: both queries
	sj.Push(1, mk(20, 7), nil) // distance 20: only the wide query
	if len(narrow) != 1 {
		t.Errorf("narrow query got %d results, want 1", len(narrow))
	}
	if len(wide) != 2 {
		t.Errorf("wide query got %d results, want 2", len(wide))
	}
	probes, routed := sj.Stats()
	if probes == 0 || routed != 3 {
		t.Errorf("probes=%d routed=%d", probes, routed)
	}
	if sj.UnsharedProbeEstimate() <= float64(probes) {
		t.Error("sharing shows no probe saving")
	}
}

func TestSharedWindowJoinRegisterDrop(t *testing.T) {
	a, b := joinSchemas()
	var first, late int
	sj, err := NewSharedWindowJoin("sj", a, b, []int{1}, []int{1},
		[]JoinQuery{{Window: 50, Sink: func(stream.Element) { first++ }}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sj.Register(JoinQuery{Window: 100, Sink: func(stream.Element) {}}); err == nil {
		t.Error("window above the physical join accepted")
	}
	qid, err := sj.Register(JoinQuery{Window: 10, Sink: func(stream.Element) { late++ }})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ts, k int64) stream.Element {
		return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(k)))
	}
	sj.Push(0, mk(0, 7), nil)
	sj.Push(1, mk(3, 7), nil) // both queries
	if first != 1 || late != 1 {
		t.Fatalf("first=%d late=%d, want 1/1", first, late)
	}
	if !sj.Drop(qid) {
		t.Fatal("drop failed")
	}
	sj.Push(1, mk(4, 7), nil) // only the survivor
	if first != 2 || late != 1 {
		t.Errorf("after drop: first=%d late=%d, want 2/1", first, late)
	}
}

func TestSharedWindowJoinValidation(t *testing.T) {
	a, b := joinSchemas()
	if _, err := NewSharedWindowJoin("sj", a, b, []int{1}, []int{1}, nil); err == nil {
		t.Error("no queries accepted")
	}
	if _, err := NewSharedWindowJoin("sj", a, b, []int{1}, []int{1},
		[]JoinQuery{{Window: 0, Sink: func(stream.Element) {}}}); err == nil {
		t.Error("zero window accepted")
	}
	noOrd := tuple.NewSchema("N", tuple.Field{Name: "k", Kind: tuple.KindInt})
	if _, err := NewSharedWindowJoin("sj", noOrd, b, []int{0}, []int{1},
		[]JoinQuery{{Window: 5, Sink: func(stream.Element) {}}}); err == nil {
		t.Error("missing ordering attribute accepted")
	}
}
