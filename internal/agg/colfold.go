// Columnar fold: GroupBy's batch-native fast path.
//
// The row path pays, per tuple, an interface dispatch per aggregate
// argument, another per state update, and an FNV chain lookup per key.
// The columnar fold removes all three for the shapes that dominate
// streaming aggregation — pane-compatible time windows grouped by bare
// columns with partializable aggregates:
//
//   - aggregate arguments are read straight out of the column vectors;
//   - state updates run typed loops over the concrete state structs
//     (countState.n++ instead of State.Add through the interface);
//   - a single small scalar grouping key direct-indexes a per-table
//     dense cache, so repeat keys skip hashing entirely. The FNV chain
//     remains the only authoritative index: the cache is filled from
//     chain lookups, cleared whenever groups leave a table, and never
//     snapshotted, which keeps checkpoint/restore byte-identical.
//
// Everything outside that envelope — computed keys or arguments,
// legacy/unbounded windows, late tuples, non-scalar keys — gathers the
// row into a scratch tuple and reruns the exact row path, so the
// columnar fold is semantically invisible.

package agg

import (
	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// Typed state-update selectors. updGeneric falls back to State.Add,
// which every aggregate supports; the named selectors inline the Add
// bodies of the partializable states (funcs.go) exactly.
type colUpd int8

const (
	updGeneric colUpd = iota
	updCount
	updSum
	updAvg
	updStddev
)

// colAgg is one aggregate's columnar update plan: which column feeds it
// (-1 = no argument) and which typed loop updates its state.
type colAgg struct {
	kind colUpd
	col  int
}

// Columnar plan states.
const (
	colPlanNone = int8(iota) // not planned yet
	colPlanFast              // pane fold straight off the columns
	colPlanRow               // gather each row, rerun the row path
)

// denseKeys bounds the dense group cache: raw key payloads below this
// direct-index a per-table pointer array. The array starts at
// denseKeysInit entries and quadruples — only up to the bound — when a
// larger eligible key shows up, so tables over small key domains (the
// common case) never pay a 32 KiB zeroed, GC-scanned allocation per
// pane.
const (
	denseKeys     = 4096
	denseKeysInit = 256
)

// growCache widens tbl's dense cache to cover raw (< denseKeys),
// preserving cached entries.
func growCache(tbl *groupTable, raw uint64) []*group {
	n := uint64(denseKeysInit)
	for n <= raw {
		n <<= 2
	}
	if n > denseKeys {
		n = denseKeys
	}
	next := make([]*group, n)
	copy(next, tbl.cache)
	tbl.cache = next
	return next
}

// planColumnar decides, once per operator instance, how ProcessBatch
// handles batches of the given arity.
func (g *GroupBy) planColumnar(arity int) {
	g.colPlan = colPlanRow
	g.colKey = -1
	if g.paneAsn == nil || g.keyCols == nil {
		return
	}
	for _, idx := range g.keyCols {
		if idx >= arity {
			return
		}
	}
	aggs := make([]colAgg, len(g.aggs))
	for i, a := range g.aggs {
		col := -1
		if a.Arg != nil {
			c, ok := a.Arg.(*expr.Col)
			if !ok || c.Index >= arity {
				return
			}
			col = c.Index
		}
		kind := updGeneric
		switch a.Fn.New().(type) {
		case *countState:
			kind = updCount
		case *sumState:
			kind = updSum
		case *avgState:
			kind = updAvg
		case *stddevState:
			kind = updStddev
		}
		aggs[i] = colAgg{kind: kind, col: col}
	}
	g.colAggs = aggs
	g.colPlan = colPlanFast
	if len(g.keyCols) == 1 {
		switch k := g.groupBy[0].Kind(); k {
		// Scalar kinds whose raw payload fully determines the value, so
		// (kind, payload) is a sound dense-cache index. Strings carry
		// out-of-band bytes and negative INTs exceed the payload bound
		// at runtime; NULLs fail the kind check. All fall back to the
		// hash chain.
		case tuple.KindInt, tuple.KindUint, tuple.KindTime, tuple.KindBool:
			g.colKey = g.keyCols[0]
			g.colKeyKind = k
		}
	}
}

// ProcessBatch implements ops.BatchOperator. Aggregation output is
// row-shaped (closed windows, partial records, progress punctuations),
// so everything leaves through emit; the batch reference is consumed.
//
// The fast plan folds the batch in equal-timestamp runs: stream sources
// emit rows in timestamp order, so consecutive batch rows overwhelmingly
// share a timestamp, and every row of a run shares one watermark
// verdict and one pane. Advancing, pane lookup, lateness checks and
// progress all happen once per run; only the group fold itself remains
// per-row.
func (g *GroupBy) ProcessBatch(_ int, b *stream.Batch, _ ops.EmitBatch, emit ops.Emit) {
	if g.colPlan == colPlanNone {
		g.planColumnar(len(b.Cols))
	}
	if g.colPlan != colPlanFast {
		if b.Sel != nil {
			for _, r := range b.Sel {
				g.pushRow(g.gatherColRow(b, int(r)), emit)
			}
		} else {
			for r := 0; r < b.Rows(); r++ {
				g.pushRow(g.gatherColRow(b, r), emit)
			}
		}
		b.Release()
		return
	}
	rows := b.Sel
	if rows == nil {
		// Dense batch: materialize the row-index ramp once so the run
		// fold has a single shape.
		n := b.Rows()
		if cap(g.runRows) < n {
			g.runRows = make([]int32, n)
		}
		rows = g.runRows[:n]
		for i := range rows {
			rows[i] = int32(i)
		}
	}
	for i := 0; i < len(rows); {
		ts := b.Ts[rows[i]]
		j := i + 1
		for j < len(rows) && b.Ts[rows[j]] == ts {
			j++
		}
		g.foldColRun(b, ts, rows[i:j], emit)
		i = j
	}
	b.Release()
}

// foldColRun replays Push's tuple branch for one equal-timestamp run of
// batch rows, taking the columnar pane fold when the pane is open.
func (g *GroupBy) foldColRun(b *stream.Batch, ts int64, rows []int32, emit ops.Emit) {
	if ts > g.watermark {
		g.advance(ts, emit)
	}
	if p := g.locatePane(ts); p == nil {
		// Every covering window already closed: late side tables.
		for _, r := range rows {
			g.foldLateClosed(g.gatherColRow(b, int(r)))
		}
	} else {
		g.foldColSpan(&p.groupTable, b, rows)
		if ts < g.watermark {
			for _, r := range rows {
				g.foldLateClosed(g.gatherColRow(b, int(r)))
			}
		}
	}
	g.emitProgress(emit)
}

// gatherColRow copies batch row r into the operator's scratch tuple for
// the row-path lanes. The row is only valid until the next gather; every
// consumer (fold, foldLateClosed, window assignment) copies what it
// keeps.
func (g *GroupBy) gatherColRow(b *stream.Batch, r int) *tuple.Tuple {
	if cap(g.colVals) < len(b.Cols) {
		g.colVals = make([]tuple.Value, len(b.Cols))
	}
	g.colRow.Vals = g.colVals[:len(b.Cols)]
	b.GatherRow(r, &g.colRow)
	return &g.colRow
}

// foldColSpan folds an equal-timestamp run of batch rows into tbl in
// two sweeps: resolve every row's group (dense cache when eligible,
// hash chain otherwise), then run one typed update loop per aggregate
// over the resolved groups — hoisting the per-aggregate dispatch out of
// the per-row path.
func (g *GroupBy) foldColSpan(tbl *groupTable, b *stream.Batch, rows []int32) {
	if cap(g.runGroups) < len(rows) {
		g.runGroups = make([]*group, len(rows))
	}
	run := g.runGroups[:len(rows)]
	if g.colKey >= 0 {
		if tbl.cache == nil {
			tbl.cache = make([]*group, denseKeysInit)
		}
		cache := tbl.cache
		key := b.Cols[g.colKey]
		for k, r := range rows {
			if v := key[r]; v.Kind == g.colKeyKind {
				if raw := v.Raw(); raw < uint64(len(cache)) {
					grp := cache[raw]
					if grp == nil {
						grp = g.locateColGroup(tbl, b, int(r))
						cache[raw] = grp
					}
					run[k] = grp
					continue
				} else if raw < denseKeys {
					cache = growCache(tbl, raw)
					grp := g.locateColGroup(tbl, b, int(r))
					cache[raw] = grp
					run[k] = grp
					continue
				}
			}
			run[k] = g.locateColGroup(tbl, b, int(r))
		}
	} else {
		for k, r := range rows {
			run[k] = g.locateColGroup(tbl, b, int(r))
		}
	}
	for i := range g.colAggs {
		ca := &g.colAggs[i]
		switch ca.kind {
		case updCount:
			for k, grp := range run {
				if st, ok := grp.states[i].(*countState); ok {
					st.n++
				} else {
					g.updateOne(grp, i, ca, b, rows[k])
				}
			}
			continue
		case updSum:
			col := b.Cols[ca.col]
			for k, grp := range run {
				if st, ok := grp.states[i].(*sumState); ok {
					if f, ok := col[rows[k]].AsFloat(); ok {
						st.sum += f
						st.any = true
					}
				} else {
					g.updateOne(grp, i, ca, b, rows[k])
				}
			}
			continue
		case updAvg:
			col := b.Cols[ca.col]
			for k, grp := range run {
				if st, ok := grp.states[i].(*avgState); ok {
					if f, ok := col[rows[k]].AsFloat(); ok {
						st.sum += f
						st.n++
					}
				} else {
					g.updateOne(grp, i, ca, b, rows[k])
				}
			}
			continue
		case updStddev:
			col := b.Cols[ca.col]
			for k, grp := range run {
				if st, ok := grp.states[i].(*stddevState); ok {
					if f, ok := col[rows[k]].AsFloat(); ok {
						st.sum += f
						st.sq += f * f
						st.n++
					}
				} else {
					g.updateOne(grp, i, ca, b, rows[k])
				}
			}
			continue
		}
		for k, grp := range run {
			g.updateOne(grp, i, ca, b, rows[k])
		}
	}
}

// updateOne is the generic single-row update for one aggregate: the
// interface-dispatch lane for states whose concrete type deviates from
// the plan (never in practice — states come from Fn.New) and for
// aggregates without a typed loop.
func (g *GroupBy) updateOne(grp *group, i int, ca *colAgg, b *stream.Batch, r int32) {
	if ca.col < 0 {
		grp.states[i].Add(tuple.Int(1))
	} else {
		grp.states[i].Add(b.Cols[ca.col][r])
	}
}

// locateColGroup is evalKeys+locateGroup reading the key values out of
// the columns instead of a tuple. Only called on the fast plan, where
// keyCols is non-nil.
func (g *GroupBy) locateColGroup(tbl *groupTable, b *stream.Batch, r int) *group {
	keys := g.scratch[:0]
	h := uint64(1469598103934665603)
	for _, idx := range g.keyCols {
		v := b.Cols[idx][r]
		keys = append(keys, v)
		h ^= v.Hash()
		h *= 1099511628211
	}
	g.scratch = keys
	return g.locateGroup(tbl, keys, h)
}

