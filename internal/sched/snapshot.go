package sched

// Checkpoint support (ckpt.Snapshotter) for the scheduling simulator:
// queue contents, arrival sequence counter, and the recorded series.
// The policy is configuration, not state, and is re-supplied when the
// simulator is rebuilt; the one stateful policy (RoundRobin's cursor)
// is restored separately by callers that checkpoint mid-run with it.

import (
	"fmt"

	"streamdb/internal/ckpt"
)

// Snapshot implements ckpt.Snapshotter.
func (s *Sim) Snapshot(enc *ckpt.Encoder) error {
	enc.Int(len(s.queues))
	for _, q := range s.queues {
		enc.Uvarint(uint64(len(q)))
		for _, t := range q {
			enc.Varint(t.seq)
			enc.Float64(t.frac)
		}
	}
	enc.Float64(s.now)
	enc.Float64(s.busy)
	enc.Varint(s.seq)
	enc.Varint(s.Processed)
	enc.Float64(s.Emitted)
	enc.Float64(s.PeakBacklog)
	enc.Uvarint(uint64(len(s.Ticks)))
	for i := range s.Ticks {
		enc.Float64(s.Ticks[i])
		enc.Float64(s.Backlog[i])
	}
	return nil
}

// Restore implements ckpt.Snapshotter on a freshly built Sim of the
// same chain.
func (s *Sim) Restore(dec *ckpt.Decoder) error {
	if n := dec.Int(); n != len(s.queues) {
		return fmt.Errorf("sched: restore: snapshot has %d queues, chain has %d", n, len(s.queues))
	}
	for i := range s.queues {
		n := dec.Uvarint()
		if dec.Err() != nil {
			return dec.Err()
		}
		q := make([]qtuple, n)
		for j := range q {
			q[j] = qtuple{seq: dec.Varint(), frac: dec.Float64()}
		}
		s.queues[i] = q
	}
	s.now = dec.Float64()
	s.busy = dec.Float64()
	s.seq = dec.Varint()
	s.Processed = dec.Varint()
	s.Emitted = dec.Float64()
	s.PeakBacklog = dec.Float64()
	n := dec.Uvarint()
	if dec.Err() != nil {
		return dec.Err()
	}
	s.Ticks = make([]float64, n)
	s.Backlog = make([]float64, n)
	for i := range s.Ticks {
		s.Ticks[i] = dec.Float64()
		s.Backlog[i] = dec.Float64()
	}
	return dec.Err()
}
