// Package streamdb is a data stream management system (DSMS) in pure
// Go, reproducing the system design surveyed in "Data Stream Query
// Processing" (Koudas & Srivastava, ICDE 2005).
//
// It provides:
//
//   - a stream data model with ordering attributes and punctuations;
//   - windows (sliding, shifting, agglomerative, tuple-count,
//     punctuation-based, partitioned);
//   - nonblocking stream operators: selection, projection, duplicate
//     elimination, symmetric hash join, windowed binary joins with
//     asymmetric probe methods, XJoin disk-spill joins, and windowed
//     grouped aggregation with distributive/algebraic/holistic
//     aggregates;
//   - a CQL/GSQL-style declarative query language with a planner,
//     predicate pushdown, and the bounded-memory analysis of Arasu et
//     al. for aggregate queries;
//   - approximation machinery: reservoir samples, histograms, Count-Min
//     and AMS sketches, Flajolet-Martin distinct counting,
//     Greenwald-Khanna quantiles, DGIM sliding-window counts;
//   - optimization: rate-based plan selection, memory-minimizing
//     operator scheduling (FIFO/Greedy/Chain), eddy-style adaptive
//     filter ordering, multi-query sharing, and random/semantic load
//     shedding;
//   - the 3-level architecture: Gigascope-style two-level partial
//     aggregation, a Hancock-style signature store, TCP transport
//     between levels, and adaptive filters for distributed monitoring.
//
// The Engine type is the front door: register stream schemas and
// sources, then run queries.
//
//	eng := streamdb.New()
//	eng.RegisterSchema("Traffic", schema)
//	eng.SetSource("Traffic", src)
//	res, err := eng.Query(`select srcIP, count(*) from Traffic [range 60]
//	                       group by srcIP`)
//
// Subsystems live in internal/ packages; this package re-exports the
// types a client needs.
package streamdb

import (
	"fmt"

	"streamdb/internal/exec"
	"streamdb/internal/query"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// Re-exported core types: the public API surface for building schemas,
// tuples and sources without importing internal packages.
type (
	// Schema describes a stream's attributes.
	Schema = tuple.Schema
	// Field is one schema attribute.
	Field = tuple.Field
	// Tuple is one stream data item.
	Tuple = tuple.Tuple
	// Value is one attribute value.
	Value = tuple.Value
	// Kind is an attribute type.
	Kind = tuple.Kind
	// Source produces stream elements.
	Source = stream.Source
	// Element is a tuple or punctuation.
	Element = stream.Element
	// WindowSpec declares a window.
	WindowSpec = window.Spec
	// Plan is a compiled query.
	Plan = query.Plan
)

// Attribute kind constants.
const (
	KindInt    = tuple.KindInt
	KindUint   = tuple.KindUint
	KindFloat  = tuple.KindFloat
	KindString = tuple.KindString
	KindBool   = tuple.KindBool
	KindIP     = tuple.KindIP
	KindTime   = tuple.KindTime
)

// Second is one virtual second in timestamp units.
const Second = stream.Second

// Value constructors.
var (
	// Int builds an INT value.
	Int = tuple.Int
	// Uint builds a UINT value.
	Uint = tuple.Uint
	// Float builds a FLOAT value.
	Float = tuple.Float
	// Str builds a STRING value.
	Str = tuple.String
	// Bool builds a BOOL value.
	Bool = tuple.Bool
	// IP builds an IPv4 value.
	IP = tuple.IP
	// Time builds a TIME value from virtual nanoseconds.
	Time = tuple.Time
)

// NewSchema builds a schema.
func NewSchema(name string, fields ...Field) *Schema {
	return tuple.NewSchema(name, fields...)
}

// NewTuple builds a tuple.
func NewTuple(ts int64, vals ...Value) *Tuple { return tuple.New(ts, vals...) }

// FromTuples builds a finite source.
func FromTuples(s *Schema, tuples ...*Tuple) Source {
	return stream.FromTuples(s, tuples...)
}

// Engine is a single-node DSMS instance: a catalog of stream schemas
// plus bound sources.
type Engine struct {
	cat     *query.Catalog
	sources map[string]Source
}

// New builds an empty engine.
func New() *Engine {
	return &Engine{cat: query.NewCatalog(), sources: make(map[string]Source)}
}

// RegisterSchema declares a stream and its schema.
func (e *Engine) RegisterSchema(name string, s *Schema) {
	e.cat.Register(name, s)
}

// SetSource binds a source to a declared stream. The source is
// consumed by the next Query call; rebind for each run.
func (e *Engine) SetSource(name string, src Source) error {
	if _, ok := e.cat.Lookup(name); !ok {
		return fmt.Errorf("streamdb: stream %q not registered", name)
	}
	e.sources[name] = src
	return nil
}

// Compile parses and plans a query without running it.
func (e *Engine) Compile(sql string) (*Plan, error) {
	q, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	return query.Compile(q, e.cat)
}

// Result holds a completed query's output.
type Result struct {
	Schema *Schema
	Rows   []*Tuple
	Plan   *Plan
}

// Query compiles and runs a query to completion over the bound
// (finite) sources, returning all result rows.
func (e *Engine) Query(sql string) (*Result, error) {
	rows, plan, err := query.Run(sql, e.cat, e.sources, -1)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: plan.OutSchema, Rows: rows, Plan: plan}, nil
}

// QueryInto compiles the query and streams results to sink instead of
// collecting them; it returns the plan. Use for unbounded sources with
// a tuple budget.
func (e *Engine) QueryInto(sql string, maxElements int64, sink func(*Tuple)) (*Plan, error) {
	q, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	plan, err := query.Compile(q, e.cat)
	if err != nil {
		return nil, err
	}
	g := exec.NewGraph(func(el Element) {
		if !el.IsPunct() {
			sink(el.Tuple)
		}
	})
	if err := plan.Build(g, e.sources); err != nil {
		return nil, err
	}
	g.Run(maxElements)
	return plan, nil
}
