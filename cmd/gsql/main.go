// Command gsql runs stream queries against built-in synthetic streams,
// the way Gigascope's GSQL processor runs over live taps (slides
// 12-13). Registered streams:
//
//	Traffic(time, srcIP, destIP, protocol, length)   — backbone packets
//	TCP(time, srcIP, destIP, protocol, ttl, len,
//	    srcPort, destPort, syn, ack, payload)        — full TCP packets
//	Measurements(time, sensor, value)                — sensor readings
//	Calls(connectTime, origin, dialed, duration,
//	      isIncomplete, isIntl, isTollFree)          — call detail records
//
// Usage:
//
//	gsql [-n 100000] [-seed 1] [-explain] "select ... from Traffic ..."
//
// With no query argument, gsql reads one query per line from stdin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"streamdb"
	"streamdb/internal/hancock"
	"streamdb/internal/netmon"
	"streamdb/internal/stream"
)

func main() {
	n := flag.Int("n", 100000, "tuples to draw from the queried stream")
	seed := flag.Int64("seed", 1, "generator seed")
	explain := flag.Bool("explain", false, "print the plan and analysis before results")
	flag.Parse()

	eng := streamdb.New()
	eng.RegisterSchema("Traffic", stream.TrafficSchema("Traffic"))
	eng.RegisterSchema("TCP", netmon.TCPSchema("TCP"))
	eng.RegisterSchema("Measurements", stream.MeasurementSchema("Measurements"))
	eng.RegisterSchema("Calls", hancock.Schema("Calls"))

	bind := func() {
		eng.SetSource("Traffic", stream.Limit(stream.NewTrafficStream(*seed, 100000, 5000), *n))
		eng.SetSource("TCP", stream.Limit(netmon.NewPacketTrace(netmon.TraceConfig{
			Seed: *seed, Rate: 100000, AddrPool: 2000,
			P2PFraction: 0.3, P2PKnownPortFraction: 1.0 / 3.0,
		}), *n))
		eng.SetSource("Measurements", stream.Limit(stream.NewMeasurementStream(*seed, 32, 10000), *n))
		eng.SetSource("Calls", hancock.Source(hancock.GenerateDay(hancock.GenConfig{
			Seed: *seed, Lines: *n / 10, CallsPerLinePerDay: 3,
		}, 0)))
	}

	run := func(sql string) {
		sql = strings.TrimSpace(sql)
		if sql == "" {
			return
		}
		bind()
		if *explain {
			plan, err := eng.Compile(sql)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gsql:", err)
				return
			}
			fmt.Print(plan.Explain())
		}
		res, err := eng.Query(sql)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gsql:", err)
			return
		}
		fmt.Print(res.Format())
	}

	if flag.NArg() > 0 {
		run(strings.Join(flag.Args(), " "))
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		run(sc.Text())
	}
}
