package query

import (
	"fmt"
	"testing"

	"streamdb/internal/exec"
	"streamdb/internal/optimizer/share"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

func trafficElems(n int) []stream.Element {
	elems := make([]stream.Element, 0, n)
	for i := 0; i < n; i++ {
		elems = append(elems, stream.Tup(trafficTuple(int64(i),
			uint32(i%7), uint32(i%3), uint64(6+(i%2)*11), uint64(i*100))))
	}
	return elems
}

func sharedRowSink(dst *[]string) share.Sinks {
	return share.Sinks{Row: func(e stream.Element) {
		if e.IsPunct() {
			return
		}
		*dst = append(*dst, fmt.Sprintf("%v", e.Tuple.Vals))
	}}
}

// Queries over the same stream merge into one shared fan-out node, and
// each query's output matches a standalone Run of the same text.
func TestSharedPlanMergesAndMatchesStandalone(t *testing.T) {
	cat := testCatalog()
	texts := []string{
		"select * from Traffic where length > 500",
		"select srcIP, length from Traffic where length > 500",
		"select srcIP from Traffic where protocol = 17",
		"select * from Traffic",
	}
	sp := NewSharedPlan(cat)
	got := make([][]string, len(texts))
	for i, text := range texts {
		if _, err := sp.Register(text, sharedRowSink(&got[i])); err != nil {
			t.Fatalf("register %q: %v", text, err)
		}
	}
	node := sp.Node("Traffic")
	if node == nil {
		t.Fatal("no shared node for Traffic")
	}
	// Two TRUE-predicate queries and two distinct WHEREs... the two
	// length>500 spellings share one kernel.
	if d := node.DistinctPredicates(); d != 3 {
		t.Errorf("distinct predicates = %d, want 3", d)
	}

	elems := trafficElems(30)
	g := exec.NewGraph(func(stream.Element) {})
	err := sp.Build(g, map[string]stream.Source{
		"Traffic": stream.FromElements(cat.schemas["Traffic"], elems...),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(-1)

	for i, text := range texts {
		rows, _, err := Run(text, cat,
			map[string]stream.Source{"Traffic": stream.FromElements(cat.schemas["Traffic"], elems...)}, -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Fatalf("standalone %q produced nothing; bad test data", text)
		}
		if len(rows) != len(got[i]) {
			t.Errorf("query %d: shared emitted %d rows, standalone %d", i, len(got[i]), len(rows))
			continue
		}
		for j, r := range rows {
			if want := fmt.Sprintf("%v", r.Vals); want != got[i][j] {
				t.Errorf("query %d row %d: shared %q, standalone %q", i, j, got[i][j], want)
				break
			}
		}
	}
}

// Register after Build attaches to the live node; Drop detaches without
// disturbing co-resident queries.
func TestSharedPlanRuntimeRegisterDrop(t *testing.T) {
	cat := testCatalog()
	sp := NewSharedPlan(cat)
	var resident []string
	if _, err := sp.Register("select * from Traffic where length > 500", sharedRowSink(&resident)); err != nil {
		t.Fatal(err)
	}
	q := stream.NewQueue(cat.schemas["Traffic"])
	g := exec.NewGraph(func(stream.Element) {})
	if err := sp.Build(g, map[string]stream.Source{"Traffic": q}); err != nil {
		t.Fatal(err)
	}
	elems := trafficElems(30)
	feed := func(es []stream.Element) {
		for _, e := range es {
			q.Feed(e)
		}
		g.Pump(-1)
	}
	feed(elems[:10])

	var late []string
	lateID, err := sp.Register("select * from Traffic where length > 500", sharedRowSink(&late))
	if err != nil {
		t.Fatal(err)
	}
	feed(elems[10:20])
	if len(late) != 10 {
		t.Errorf("late query saw %d rows of its 10-row window", len(late))
	}
	if err := sp.Drop(lateID); err != nil {
		t.Fatal(err)
	}
	feed(elems[20:])
	if len(late) != 10 {
		t.Errorf("dropped query kept receiving: %d rows", len(late))
	}
	if len(resident) != 24 { // length > 500 passes ts 6..29
		t.Errorf("co-resident query saw %d rows, want 24", len(resident))
	}
	if sp.Queries() != 1 {
		t.Errorf("live queries = %d, want 1", sp.Queries())
	}

	// A stream never wired at Build time cannot join the running graph.
	var none []string
	if _, err := sp.Register("select * from S", sharedRowSink(&none)); err == nil {
		t.Error("register on unwired stream after Build should fail")
	}
}

func TestSharedPlanRejectsUnshareable(t *testing.T) {
	cat := testCatalog()
	sp := NewSharedPlan(cat)
	for _, text := range []string{
		"select count(*) from Traffic",
		"select srcIP from Traffic group by srcIP",
		"select distinct srcIP from Traffic [range 60]",
		"select * from Traffic, S where Traffic.srcIP = S.srcIP",
		"select * from Nope",
	} {
		var sink []string
		if _, err := sp.Register(text, sharedRowSink(&sink)); err == nil {
			t.Errorf("%q should not be shareable", text)
		}
	}
	if err := sp.Drop(99); err == nil {
		t.Error("dropping unknown id should fail")
	}
}

// The columnar engine lane delivers borrowed batch views per query with
// projections applied, byte-identical to the row lane.
func TestSharedPlanColumnarLane(t *testing.T) {
	cat := testCatalog()
	elems := trafficElems(64)
	texts := []string{
		"select * from Traffic where length > 500",
		"select srcIP, length from Traffic where protocol = 6",
	}
	run := func(columnar bool) [][]string {
		sp := NewSharedPlan(cat)
		out := make([][]string, len(texts))
		for i, text := range texts {
			ii := i
			sinks := share.Sinks{Row: func(e stream.Element) {
				if !e.IsPunct() {
					out[ii] = append(out[ii], fmt.Sprintf("%v", e.Tuple.Vals))
				}
			}}
			if columnar {
				sinks.Col = func(b *stream.Batch) {
					n := b.N()
					row := tuple.Tuple{Vals: make([]tuple.Value, len(b.Cols))}
					for r := 0; r < n; r++ {
						pr := r
						if b.Sel != nil {
							pr = int(b.Sel[r])
						}
						b.GatherRow(pr, &row)
						out[ii] = append(out[ii], fmt.Sprintf("%v", row.Vals))
					}
				}
			}
			if _, err := sp.Register(text, sinks); err != nil {
				t.Fatal(err)
			}
		}
		g := exec.NewGraph(func(stream.Element) {})
		err := sp.Build(g, map[string]stream.Source{
			"Traffic": stream.FromElements(cat.schemas["Traffic"], elems...),
		})
		if err != nil {
			t.Fatal(err)
		}
		g.RunWith(-1, exec.RunOptions{Columnar: columnar, BatchSize: 16})
		return out
	}
	rowOut := run(false)
	colOut := run(true)
	for i := range texts {
		if len(rowOut[i]) == 0 {
			t.Fatalf("query %d produced nothing; bad test data", i)
		}
		if fmt.Sprint(rowOut[i]) != fmt.Sprint(colOut[i]) {
			t.Errorf("query %d: columnar lane diverges from row lane\nrow: %v\ncol: %v",
				i, rowOut[i], colOut[i])
		}
	}
}
