package share

import (
	"fmt"
	"sync"
	"testing"

	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// Shared-vs-unshared byte-equivalence: every query subscribed to a
// shared node must observe exactly the element sequence a dedicated
// per-query ops.Select would have produced — across predicate shapes
// (mirrored/commuted spellings, AND prefixes, OR, modulo fallback,
// constant TRUE), batch sizes, both lanes, punctuations, and late
// tuples.

func render(e stream.Element) string {
	if e.IsPunct() {
		return fmt.Sprintf("P@%d", e.Ts())
	}
	return fmt.Sprintf("%d|%v", e.Tuple.Ts, e.Tuple.Vals)
}

func renderBatch(b *stream.Batch, dst []string) []string {
	n := b.N()
	row := tuple.Tuple{Vals: make([]tuple.Value, len(b.Cols))}
	for i := 0; i < n; i++ {
		r := i
		if b.Sel != nil {
			r = int(b.Sel[i])
		}
		b.GatherRow(r, &row)
		dst = append(dst, render(stream.Tup(&row)))
	}
	return dst
}

// equivInput builds the test stream: mostly ascending timestamps, a
// late tuple burst, and punctuations mid-stream.
func equivInput() []stream.Element {
	var elems []stream.Element
	for i := int64(0); i < 40; i++ {
		ts := i
		if i >= 12 && i < 15 { // late arrivals
			ts = i - 10
		}
		elems = append(elems, el(ts, i))
		if i == 10 || i == 25 {
			elems = append(elems, stream.Punct(stream.ProgressPunct(ts, 0, tuple.Time(ts))))
		}
	}
	return elems
}

func equivPreds(t *testing.T) []expr.Expr {
	t.Helper()
	v := expr.MustColumn(sch, "v")
	ts := expr.MustColumn(sch, "time")
	lit := func(n int64) expr.Expr { return expr.Constant(tuple.Int(n)) }
	bin := func(op expr.BinOp, l, r expr.Expr) expr.Expr {
		e, err := expr.NewBin(op, l, r)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	return []expr.Expr{
		bin(expr.OpGt, v, lit(5)), // v > 5
		bin(expr.OpLt, lit(5), v), // 5 < v (mirrored)
		bin(expr.OpAnd, bin(expr.OpGt, v, lit(2)), bin(expr.OpLt, v, lit(30))), // AND
		bin(expr.OpAnd, bin(expr.OpLt, v, lit(30)), bin(expr.OpGt, v, lit(2))), // commuted AND
		bin(expr.OpAnd, bin(expr.OpGt, v, lit(2)),
			bin(expr.OpGt, ts, expr.Constant(tuple.Time(4)))), // shared prefix
		bin(expr.OpEq, bin(expr.OpMod, v, lit(3)), lit(0)),                    // row-kernel fallback
		expr.Constant(tuple.Bool(true)),                                       // TRUE
		bin(expr.OpOr, bin(expr.OpLt, v, lit(3)), bin(expr.OpGt, v, lit(35))), // OR
	}
}

// unsharedRow runs one dedicated ops.Select per query on the row lane:
// the reference output.
func unsharedRow(t *testing.T, preds []expr.Expr, input []stream.Element) [][]string {
	t.Helper()
	out := make([][]string, len(preds))
	for q, p := range preds {
		sel, err := ops.NewSelect(fmt.Sprintf("q%d", q), sch, p, -1, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range input {
			qq := q
			sel.Push(0, e, func(o stream.Element) { out[qq] = append(out[qq], render(o)) })
		}
	}
	return out
}

// unsharedCol runs one dedicated ops.Select per query on the columnar
// lane, batches cut at punctuation boundaries like the engine does.
func unsharedCol(t *testing.T, preds []expr.Expr, input []stream.Element, bs int) [][]string {
	t.Helper()
	out := make([][]string, len(preds))
	sels := make([]*ops.Select, len(preds))
	for q, p := range preds {
		sel, err := ops.NewSelect(fmt.Sprintf("q%d", q), sch, p, -1, 1)
		if err != nil {
			t.Fatal(err)
		}
		sels[q] = sel
	}
	feedBatch := func(b *stream.Batch) {
		for q, sel := range sels {
			qq := q
			b.Retain()
			sel.ProcessBatch(0, b, func(ob *stream.Batch) {
				out[qq] = renderBatch(ob, out[qq])
				ob.Release()
			}, nil)
		}
	}
	forEachBatch(input, bs, feedBatch, func(e stream.Element) {
		for q, sel := range sels {
			qq := q
			sel.Push(0, e, func(o stream.Element) { out[qq] = append(out[qq], render(o)) })
		}
	})
	return out
}

// forEachBatch transposes the data runs of input into batches of bs
// rows, flushing at punctuations (which go through onPunct), the same
// cut points the columnar engine produces.
func forEachBatch(input []stream.Element, bs int, onBatch func(*stream.Batch), onPunct func(stream.Element)) {
	pool := stream.NewColPool(sch, bs)
	cur := pool.Get()
	flush := func() {
		if cur.Rows() > 0 {
			onBatch(cur)
			cur = pool.Get()
		}
	}
	for _, e := range input {
		if e.IsPunct() {
			flush()
			onPunct(e)
			continue
		}
		cur.AppendRow(e.Tuple)
		if cur.Rows() == bs {
			flush()
		}
	}
	flush()
	cur.Release()
}

func TestSharedSelectEquivalenceMatrix(t *testing.T) {
	preds := equivPreds(t)
	input := equivInput()
	golden := unsharedRow(t, preds, input)

	// Row lane through the shared node.
	{
		ss := NewSharedSelect("ss", sch)
		got := make([][]string, len(preds))
		for q, p := range preds {
			qq := q
			if _, err := ss.Register(p, func(e stream.Element) {
				got[qq] = append(got[qq], render(e))
			}); err != nil {
				t.Fatal(err)
			}
		}
		for _, e := range input {
			ss.Push(0, e, nil)
		}
		compareOutputs(t, "shared/row", golden, got)
	}

	for _, bs := range []int{1, 7, 64} {
		bs := bs
		t.Run(fmt.Sprintf("batch%d", bs), func(t *testing.T) {
			// Dedicated per-query Selects on the columnar lane agree
			// with the row reference.
			compareOutputs(t, "unshared/col", golden, unsharedCol(t, preds, input, bs))

			// Shared node, columnar fan-out via Col sinks.
			ss := NewSharedSelect("ss", sch)
			got := make([][]string, len(preds))
			for q, p := range preds {
				qq := q
				_, err := ss.RegisterSinks(p, Sinks{
					Row: func(e stream.Element) { got[qq] = append(got[qq], render(e)) },
					Col: func(b *stream.Batch) { got[qq] = renderBatch(b, got[qq]) },
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			forEachBatch(input, bs,
				func(b *stream.Batch) { ss.ProcessBatch(0, b, nil, nil) },
				func(e stream.Element) { ss.Push(0, e, nil) })
			compareOutputs(t, "shared/col", golden, got)

			// Shared node, columnar lane but row-only sinks (engine
			// materialization path).
			ss2 := NewSharedSelect("ss2", sch)
			got2 := make([][]string, len(preds))
			for q, p := range preds {
				qq := q
				if _, err := ss2.Register(p, func(e stream.Element) {
					got2[qq] = append(got2[qq], render(e))
				}); err != nil {
					t.Fatal(err)
				}
			}
			forEachBatch(input, bs,
				func(b *stream.Batch) { ss2.ProcessBatch(0, b, nil, nil) },
				func(e stream.Element) { ss2.Push(0, e, nil) })
			compareOutputs(t, "shared/col-rowsinks", golden, got2)
		})
	}
}

func compareOutputs(t *testing.T, label string, want, got [][]string) {
	t.Helper()
	for q := range want {
		if len(want[q]) != len(got[q]) {
			t.Errorf("%s: query %d emitted %d elements, want %d", label, q, len(got[q]), len(want[q]))
			continue
		}
		for i := range want[q] {
			if want[q][i] != got[q][i] {
				t.Errorf("%s: query %d element %d = %q, want %q", label, q, i, got[q][i], want[q][i])
				break
			}
		}
	}
}

// SharedWindowJoin: the columnar lane (batch join + distance-kernel
// routing) must deliver each query the same results as the row lane.
func TestSharedWindowJoinBatchEquivalence(t *testing.T) {
	a, b := joinSchemas()
	windows := []int64{3, 10, 40}
	mkJoin := func(sinks []func(stream.Element), cols []func(*stream.Batch)) *SharedWindowJoin {
		queries := make([]JoinQuery, len(windows))
		for i, w := range windows {
			queries[i] = JoinQuery{Window: w, Sink: sinks[i]}
			if cols != nil {
				queries[i].Col = cols[i]
			}
		}
		sj, err := NewSharedWindowJoin("sj", a, b, []int{1}, []int{1}, queries)
		if err != nil {
			t.Fatal(err)
		}
		return sj
	}
	mk := func(ts, k int64) *tuple.Tuple { return tuple.New(ts, tuple.Time(ts), tuple.Int(k)) }
	type feed struct {
		port int
		rows []*tuple.Tuple
	}
	var feeds []feed
	for i := int64(0); i < 12; i++ {
		feeds = append(feeds,
			feed{0, []*tuple.Tuple{mk(i*4, i%3), mk(i*4+1, (i+1)%3)}},
			feed{1, []*tuple.Tuple{mk(i*4+2, i%3), mk(i*4+3, (i+2)%3)}})
	}

	// Row lane reference.
	want := make([][]string, len(windows))
	{
		sinks := make([]func(stream.Element), len(windows))
		for i := range windows {
			ii := i
			sinks[ii] = func(e stream.Element) { want[ii] = append(want[ii], render(e)) }
		}
		sj := mkJoin(sinks, nil)
		for _, f := range feeds {
			for _, r := range f.rows {
				sj.Push(f.port, stream.Tup(r), nil)
			}
		}
	}

	// Columnar lane, Col sinks.
	got := make([][]string, len(windows))
	{
		sinks := make([]func(stream.Element), len(windows))
		cols := make([]func(*stream.Batch), len(windows))
		for i := range windows {
			ii := i
			sinks[ii] = func(e stream.Element) { got[ii] = append(got[ii], render(e)) }
			cols[ii] = func(ob *stream.Batch) { got[ii] = renderBatch(ob, got[ii]) }
		}
		sj := mkJoin(sinks, cols)
		poolA := stream.NewColPool(a, 4)
		poolB := stream.NewColPool(b, 4)
		for _, f := range feeds {
			pool := poolA
			if f.port == 1 {
				pool = poolB
			}
			cb := pool.Get()
			for _, r := range f.rows {
				cb.AppendRow(r)
			}
			sj.ProcessBatch(f.port, cb, nil, nil)
		}
	}
	compareOutputs(t, "join/col", want, got)
}

// Concurrent register/drop under live traffic: run with -race. A query
// registered before traffic starts must see every one of its matches
// regardless of churn on other registrations.
func TestSharedSelectConcurrentRegisterDrop(t *testing.T) {
	ss := NewSharedSelect("ss", sch)
	const rows = 4000
	var baseline int64
	if _, err := ss.Register(gt(t, -1), func(stream.Element) { baseline++ }); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Churn: register and drop queries while traffic flows.
		for {
			select {
			case <-done:
				return
			default:
			}
			qid, err := ss.Register(gt(t, 500), func(stream.Element) {})
			if err != nil {
				t.Error(err)
				return
			}
			ss.Drop(qid)
		}
	}()
	pool := stream.NewColPool(sch, 64)
	cur := pool.Get()
	for i := int64(0); i < rows; i++ {
		if i%3 == 0 {
			ss.Push(0, el(i, i), nil) // row lane
			continue
		}
		cur.AppendRow(tuple.New(i, tuple.Time(i), tuple.Int(i)))
		if cur.Rows() == 64 {
			ss.ProcessBatch(0, cur, nil, nil)
			cur = pool.Get()
		}
	}
	ss.ProcessBatch(0, cur, nil, nil)
	close(done)
	wg.Wait()
	if baseline != rows {
		t.Errorf("baseline query saw %d of %d rows under churn", baseline, rows)
	}
}

func TestSharedWindowJoinConcurrentRegisterDrop(t *testing.T) {
	a, b := joinSchemas()
	var baseline int64
	sj, err := NewSharedWindowJoin("sj", a, b, []int{1}, []int{1},
		[]JoinQuery{{Window: 50, Sink: func(stream.Element) { baseline++ }}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			qid, err := sj.Register(JoinQuery{Window: 5, Sink: func(stream.Element) {}})
			if err != nil {
				t.Error(err)
				return
			}
			sj.Drop(qid)
		}
	}()
	mk := func(ts, k int64) stream.Element {
		return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(k)))
	}
	for i := int64(0); i < 2000; i++ {
		sj.Push(int(i%2), mk(i, i%5), nil)
	}
	close(done)
	wg.Wait()
	if baseline == 0 {
		t.Error("baseline join query produced no results")
	}
}
