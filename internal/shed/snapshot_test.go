package shed

// Snapshot/Restore round-trips for the shedders: a restored shedder
// must drop exactly the same tuples the original would have (the PRNG
// position is part of the cut), carry the live rate across the cut —
// including a rate raised mid-run by the adaptive controller — and
// reject a snapshot from a differently-seeded operator.

import (
	"sync"
	"testing"

	"streamdb/internal/ckpt"
	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

func TestRandomSnapshotRestoreContinuesExactly(t *testing.T) {
	orig, err := NewRandom("shed", sch, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	drop := func(r *Random, n int, from int64) []bool {
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			kept := false
			r.Push(0, el(from+int64(i), from+int64(i)), func(stream.Element) { kept = true })
			out[i] = kept
		}
		return out
	}
	drop(orig, 500, 0)
	orig.SetRate(0.8) // controller raised the rate mid-run
	drop(orig, 100, 500)
	enc := &ckpt.Encoder{}
	if err := orig.Snapshot(enc); err != nil {
		t.Fatal(err)
	}
	restored, err := NewRandom("shed", sch, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(ckpt.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Rate() != 0.8 {
		t.Errorf("restored rate = %v, want the live 0.8, not the construction 0.4", restored.Rate())
	}
	a := drop(orig, 400, 600)
	b := drop(restored, 400, 600)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tuple %d: original kept=%v, restored kept=%v", i, a[i], b[i])
		}
	}
	if orig.Dropped() != restored.Dropped() {
		t.Errorf("Dropped: original %d, restored %d", orig.Dropped(), restored.Dropped())
	}
}

func TestSemanticSnapshotRestoreContinuesExactly(t *testing.T) {
	keep, err := expr.NewBin(expr.OpGt, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(700)))
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Semantic {
		s, err := NewSemantic("sem", sch, keep, 0.5, 11)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	orig := build()
	feed := func(s *Semantic, n int, from int64) []bool {
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			kept := false
			s.Push(0, el(from+int64(i), (from+int64(i))%1000), func(stream.Element) { kept = true })
			out[i] = kept
		}
		return out
	}
	feed(orig, 600, 0)
	enc := &ckpt.Encoder{}
	if err := orig.Snapshot(enc); err != nil {
		t.Fatal(err)
	}
	restored := build()
	if err := restored.Restore(ckpt.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	a := feed(orig, 500, 600)
	b := feed(restored, 500, 600)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tuple %d: original kept=%v, restored kept=%v", i, a[i], b[i])
		}
	}
	oi, oo, ok := orig.Stats()
	ri, ro, rk := restored.Stats()
	if oi != ri || oo != ro || ok != rk {
		t.Errorf("stats diverged: original (%d,%d,%d), restored (%d,%d,%d)", oi, oo, ok, ri, ro, rk)
	}
}

func TestShedRestoreRejectsSeedMismatch(t *testing.T) {
	orig, err := NewRandom("shed", sch, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	enc := &ckpt.Encoder{}
	if err := orig.Snapshot(enc); err != nil {
		t.Fatal(err)
	}
	other, err := NewRandom("shed", sch, 0.4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(ckpt.NewDecoder(enc.Bytes())); err == nil {
		t.Error("restore with a different PRNG seed must fail")
	}
}

// TestShedRateConcurrentSetGet: the adaptive controller writes the rate
// from its own goroutine while the data path reads it per tuple; both
// must be race-free and the write immediately visible.
func TestShedRateConcurrentSetGet(t *testing.T) {
	r, err := NewRandom("shed", sch, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			r.SetRate(float64(i%100) / 100)
		}
	}()
	go func() {
		defer wg.Done()
		emit := func(stream.Element) {}
		for i := 0; i < 2000; i++ {
			r.Push(0, el(int64(i), int64(i)), emit)
			_ = r.Rate()
		}
	}()
	wg.Wait()
	if got := r.Rate(); got < 0 || got > 1 {
		t.Errorf("final rate = %v, want within [0,1]", got)
	}
}
