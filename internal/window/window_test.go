package window

import (
	"testing"
	"testing/quick"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

func tup(ts int64) *tuple.Tuple { return tuple.New(ts, tuple.Time(ts), tuple.Int(ts)) }

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		Time(60, 10), Tumbling(60), Rows(100), Landmark(5), Punctuated(), {},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
	bad := []Spec{
		Time(0, 10), Time(60, 0), Time(10, 60), Rows(0),
		{Kind: KindTime, Landmark: true, Slide: 0},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%v validated", s)
		}
	}
}

func TestSpecString(t *testing.T) {
	cases := map[string]Spec{
		"[UNBOUNDED]":         {},
		"[PUNCTUATED]":        Punctuated(),
		"[ROWS 5]":            Rows(5),
		"[RANGE 60]":          Tumbling(60),
		"[RANGE 60 SLIDE 10]": Time(60, 10),
		"[LANDMARK SLIDE 9]":  Landmark(9),
	}
	for want, s := range cases {
		if got := s.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", s, got, want)
		}
	}
}

func TestTimeBufferExpiry(t *testing.T) {
	b := NewTimeBuffer(10)
	for _, ts := range []int64{1, 5, 9, 12} {
		b.Insert(tup(ts))
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}
	// At now=12, cutoff is 2: the tuple at ts=1 expires.
	if d := b.Invalidate(12); d != 1 {
		t.Errorf("Invalidate(12) dropped %d, want 1", d)
	}
	if d := b.Invalidate(22); d != 3 {
		t.Errorf("Invalidate(22) dropped %d, want 3", d)
	}
	if b.Len() != 0 || b.MemSize() != 0 {
		t.Errorf("Len=%d MemSize=%d after full expiry", b.Len(), b.MemSize())
	}
}

func TestTimeBufferUnboundedAndReset(t *testing.T) {
	b := NewTimeBuffer(0)
	for i := int64(0); i < 100; i++ {
		b.Insert(tup(i))
	}
	if d := b.Invalidate(1 << 40); d != 0 {
		t.Errorf("unbounded buffer expired %d tuples", d)
	}
	b.Reset()
	if b.Len() != 0 || b.MemSize() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestTimeBufferRingGrowth(t *testing.T) {
	b := NewTimeBuffer(1000)
	// Interleave inserts and expiry so head wraps before growth.
	for i := int64(0); i < 500; i++ {
		b.Insert(tup(i))
		if i%3 == 0 {
			b.Invalidate(i)
		}
	}
	var prev int64 = -1
	n := 0
	b.Each(func(tp *tuple.Tuple) bool {
		if tp.Ts <= prev {
			t.Fatalf("out of order after growth: %d <= %d", tp.Ts, prev)
		}
		prev = tp.Ts
		n++
		return true
	})
	if n != b.Len() {
		t.Errorf("Each visited %d, Len = %d", n, b.Len())
	}
}

func TestTimeBufferEachStops(t *testing.T) {
	b := NewTimeBuffer(0)
	for i := int64(0); i < 10; i++ {
		b.Insert(tup(i))
	}
	n := 0
	b.Each(func(*tuple.Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("Each visited %d after stop", n)
	}
}

func TestRowBufferEviction(t *testing.T) {
	b := NewRowBuffer(3)
	for i := int64(1); i <= 5; i++ {
		b.Insert(tup(i))
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	var got []int64
	b.Each(func(tp *tuple.Tuple) bool { got = append(got, tp.Ts); return true })
	if len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Errorf("contents = %v, want [3 4 5]", got)
	}
	if b.Invalidate(999) != 0 {
		t.Error("row buffer expired by time")
	}
}

func TestRowBufferZeroSize(t *testing.T) {
	b := NewRowBuffer(0) // clamps to 1
	b.Insert(tup(1))
	b.Insert(tup(2))
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
}

func TestBufferInvariantProperty(t *testing.T) {
	// Property: after any sequence of inserts with monotone timestamps
	// and an Invalidate(now), every remaining tuple satisfies
	// ts > now - range, and the dropped count is exact.
	f := func(raw []uint8, rng uint8) bool {
		r := int64(rng%50) + 1
		b := NewTimeBuffer(r)
		ts := int64(0)
		for _, d := range raw {
			ts += int64(d % 7)
			b.Insert(tup(ts))
		}
		total := b.Len()
		dropped := b.Invalidate(ts)
		ok := true
		live := 0
		b.Each(func(tp *tuple.Tuple) bool {
			if tp.Ts <= ts-r {
				ok = false
			}
			live++
			return true
		})
		return ok && dropped+live == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAssignerTumbling(t *testing.T) {
	a := NewAssigner(Tumbling(60))
	ids := a.Assign(125)
	if len(ids) != 1 || ids[0] != (ID{Start: 120, End: 180}) {
		t.Errorf("Assign(125) = %v", ids)
	}
	if c := a.Closed(180); c != 180 {
		t.Errorf("Closed(180) = %d", c)
	}
}

func TestAssignerSliding(t *testing.T) {
	a := NewAssigner(Time(60, 20))
	ids := a.Assign(70)
	// Windows covering 70: [60,120), [40,100), [20,80).
	want := []ID{{60, 120}, {40, 100}, {20, 80}}
	if len(ids) != len(want) {
		t.Fatalf("Assign(70) = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %v, want %v", i, ids[i], want[i])
		}
	}
	// Early tuples must not be assigned to negative-start windows.
	ids = a.Assign(10)
	for _, id := range ids {
		if id.Start < 0 {
			t.Errorf("negative window start %v", id)
		}
	}
}

func TestAssignerLandmark(t *testing.T) {
	a := NewAssigner(Landmark(30))
	ids := a.Assign(95)
	if len(ids) != 1 || ids[0].Start != 0 || ids[0].End != 120 {
		t.Errorf("Assign(95) = %v", ids)
	}
}

func TestAssignerSlidingCoverageProperty(t *testing.T) {
	// Every assigned window contains ts; the count is ceil(range/slide)
	// except near stream start.
	f := func(tsRaw uint32, rngRaw, slideRaw uint8) bool {
		slide := int64(slideRaw%20) + 1
		rng := slide * (int64(rngRaw%5) + 1)
		ts := int64(tsRaw % 100000)
		a := NewAssigner(Time(rng, slide))
		ids := a.Assign(ts)
		if len(ids) == 0 {
			return false
		}
		for _, id := range ids {
			if ts < id.Start || ts >= id.End || id.Start < 0 || id.End-id.Start != rng {
				return false
			}
		}
		if ts >= rng && int64(len(ids)) != rng/slide {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPunctBuffer(t *testing.T) {
	p := NewPunctBuffer()
	mk := func(ts, auction int64) *tuple.Tuple {
		return tuple.New(ts, tuple.Time(ts), tuple.Int(auction))
	}
	p.Insert(mk(1, 7))
	p.Insert(mk(2, 8))
	p.Insert(mk(3, 7))
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	closed := p.Close(stream.EndGroupPunct(4, 1, tuple.Int(7)))
	if len(closed) != 2 {
		t.Fatalf("closed = %d tuples, want 2", len(closed))
	}
	if p.Len() != 1 {
		t.Errorf("pending = %d, want 1", p.Len())
	}
	if p.MemSize() <= 0 {
		t.Error("MemSize <= 0 with pending tuple")
	}
	rest := p.Close(stream.EndGroupPunct(5, 1, tuple.Int(8)))
	if len(rest) != 1 || p.Len() != 0 || p.MemSize() != 0 {
		t.Errorf("final close: %d closed, %d pending, %d bytes", len(rest), p.Len(), p.MemSize())
	}
}

func TestPartitionedBuffer(t *testing.T) {
	mk := func(ts, key int64) *tuple.Tuple {
		return tuple.New(ts, tuple.Time(ts), tuple.Int(key))
	}
	p := NewPartitioned([]int{1}, func() Buffer { return NewRowBuffer(2) })
	// Three keys, enough inserts that per-key eviction kicks in.
	for i := int64(0); i < 12; i++ {
		p.Insert(mk(i, i%3))
	}
	if p.Partitions() != 3 {
		t.Fatalf("Partitions = %d", p.Partitions())
	}
	if p.Len() != 6 { // 2 rows per key
		t.Errorf("Len = %d, want 6", p.Len())
	}
	n := 0
	p.EachInPartition(mk(99, 1), func(tp *tuple.Tuple) bool {
		if v, _ := tp.Vals[1].AsInt(); v != 1 {
			t.Errorf("foreign tuple in partition: %v", tp)
		}
		n++
		return true
	})
	if n != 2 {
		t.Errorf("partition visit count = %d", n)
	}
	total := 0
	p.Each(func(*tuple.Tuple) bool { total++; return true })
	if total != 6 {
		t.Errorf("Each visited %d", total)
	}
	if p.MemSize() <= 0 {
		t.Error("MemSize <= 0")
	}
}

func TestPartitionedInvalidatePrunes(t *testing.T) {
	p := NewPartitioned([]int{1}, func() Buffer { return NewTimeBuffer(10) })
	mk := func(ts, key int64) *tuple.Tuple {
		return tuple.New(ts, tuple.Time(ts), tuple.Int(key))
	}
	p.Insert(mk(1, 1))
	p.Insert(mk(2, 2))
	p.Insert(mk(50, 2))
	if d := p.Invalidate(50); d != 2 {
		t.Errorf("Invalidate dropped %d, want 2", d)
	}
	if p.Partitions() != 1 {
		t.Errorf("Partitions = %d after prune, want 1", p.Partitions())
	}
}

func TestNewBufferDispatch(t *testing.T) {
	if _, ok := NewBuffer(Rows(5)).(*RowBuffer); !ok {
		t.Error("Rows spec did not build RowBuffer")
	}
	if _, ok := NewBuffer(Time(60, 60)).(*TimeBuffer); !ok {
		t.Error("Time spec did not build TimeBuffer")
	}
	b := NewBuffer(Spec{Kind: KindTime, Landmark: true, Slide: 10})
	b.Insert(tup(1))
	if b.Invalidate(1<<40) != 0 {
		t.Error("landmark buffer expired tuples")
	}
}
