package streamdb_test

import (
	"fmt"

	"streamdb"
)

func trafficSchema() *streamdb.Schema {
	return streamdb.NewSchema("Traffic",
		streamdb.Field{Name: "time", Kind: streamdb.KindTime, Ordering: true},
		streamdb.Field{Name: "srcIP", Kind: streamdb.KindIP},
		streamdb.Field{Name: "length", Kind: streamdb.KindUint},
	)
}

func packet(ts int64, ip uint32, length uint64) *streamdb.Tuple {
	return streamdb.NewTuple(ts,
		streamdb.Time(ts), streamdb.IP(ip), streamdb.Uint(length))
}

// A one-shot query over a bound finite source.
func ExampleEngine_Query() {
	eng := streamdb.New()
	sch := trafficSchema()
	eng.RegisterSchema("Traffic", sch)
	eng.SetSource("Traffic", streamdb.FromTuples(sch,
		packet(1, 0x0a000001, 100),
		packet(2, 0x0a000002, 1500),
		packet(3, 0x0a000001, 900),
	))
	res, err := eng.Query("select ip4(srcIP) as src, length from Traffic where length > 512")
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		src, _ := row.Vals[0].AsString()
		l, _ := row.Vals[1].AsUint()
		fmt.Println(src, l)
	}
	// Output:
	// 10.0.0.2 1500
	// 10.0.0.1 900
}

// Windowed grouped aggregation with the GSQL time-bucket idiom.
func ExampleEngine_Query_aggregate() {
	eng := streamdb.New()
	sch := trafficSchema()
	eng.RegisterSchema("Traffic", sch)
	var tuples []*streamdb.Tuple
	for i := int64(0); i < 6; i++ {
		tuples = append(tuples, packet(i*streamdb.Second, uint32(i%2), 100))
	}
	eng.SetSource("Traffic", streamdb.FromTuples(sch, tuples...))
	res, err := eng.Query(
		"select srcIP, count(*) as pkts from Traffic [range 60] group by srcIP")
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		ip, _ := row.Vals[0].AsUint()
		c, _ := row.Vals[1].AsInt()
		fmt.Printf("src %d: %d packets\n", ip, c)
	}
	// Output:
	// src 0: 3 packets
	// src 1: 3 packets
}

// The planner's bounded-memory analysis (slide 36 of the tutorial),
// available without running the query.
func ExampleEngine_Compile() {
	eng := streamdb.New()
	eng.RegisterSchema("Traffic", trafficSchema())
	for _, sql := range []string{
		"select length, count(*) from Traffic where length > 512 group by length",
		"select length, count(*) from Traffic where length > 512 and length < 1024 group by length",
	} {
		plan, err := eng.Compile(sql)
		if err != nil {
			panic(err)
		}
		fmt.Println(plan.Bounded.OK)
	}
	// Output:
	// false
	// true
}

// A persistent query: results stream out as elements are pushed in.
func ExampleEngine_RegisterContinuous() {
	eng := streamdb.New()
	eng.RegisterSchema("Traffic", trafficSchema())
	cq, err := eng.RegisterContinuous(
		"select length from Traffic where length > 1000",
		func(t *streamdb.Tuple) {
			l, _ := t.Vals[0].AsUint()
			fmt.Println("alert:", l)
		})
	if err != nil {
		panic(err)
	}
	cq.Feed("Traffic", packet(1, 1, 200))  // no output
	cq.Feed("Traffic", packet(2, 1, 1400)) // alert fires immediately
	cq.Close()
	// Output:
	// alert: 1400
}
